package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	Imports    []string
	ImportMap  map[string]string
	Module     *struct {
		Path string
		Main bool
	}
	Incomplete bool
	Error      *struct{ Err string }
}

// LoadModule type-checks the packages matched by patterns (and, for
// analysis purposes, every module-internal dependency they pull in)
// rooted at dir. It shells out to `go list -deps -export -json`, which
// yields both the module file sets and ready-made export data for
// out-of-module dependencies, then type-checks the module's packages
// from source in dependency order so that all packages share one type
// object space.
//
// The loader is self-contained: no network, no GOPATH assumptions, no
// golang.org/x/tools.
func LoadModule(dir string, patterns ...string) (*Module, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	m := &Module{Fset: fset, Pkgs: map[string]*Package{}}

	// Export-data importer for everything outside the module (stdlib and
	// pinned deps): `go list -export` leaves compiled export files in
	// the build cache and hands us their paths.
	byPath := map[string]*listedPackage{}
	for _, p := range listed {
		byPath[p.ImportPath] = p
	}
	imp := &moduleImporter{
		module: m,
		gc: importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
			p, ok := byPath[path]
			if !ok || p.Export == "" {
				return nil, fmt.Errorf("gossiplint: no export data for %q", path)
			}
			return os.Open(p.Export)
		}),
	}

	// `go list -deps` emits a depth-first post-order: every package
	// appears after all its dependencies, so one forward sweep
	// type-checks the module bottom-up.
	for _, p := range listed {
		if p.Module == nil || !p.Module.Main {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("gossiplint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if m.Path == "" {
			m.Path = p.Module.Path
		}
		pkg, err := checkPackage(fset, imp, p)
		if err != nil {
			return nil, err
		}
		m.Pkgs[p.ImportPath] = pkg
		m.Paths = append(m.Paths, p.ImportPath)
	}
	if len(m.Paths) == 0 {
		return nil, fmt.Errorf("gossiplint: patterns %v matched no module packages under %s", patterns, dir)
	}
	return m, nil
}

func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := []string{
		"list", "-deps", "-export",
		"-json=ImportPath,Name,Dir,GoFiles,Export,Standard,Imports,ImportMap,Module,Incomplete,Error",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("gossiplint: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var listed []*listedPackage
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("gossiplint: decoding go list output: %v", err)
		}
		listed = append(listed, p)
	}
	return listed, nil
}

// CheckFiles type-checks one package from the given source files using
// imp to resolve imports, returning the lint view of the package. It is
// shared by the module loader and the vettool single-unit mode.
func CheckFiles(fset *token.FileSet, imp types.Importer, path string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("gossiplint: %v", err)
		}
		files = append(files, f)
	}
	conf := types.Config{Importer: imp}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("gossiplint: type-checking %s: %v", path, err)
	}
	return &Package{
		Path:       path,
		Fset:       fset,
		Files:      files,
		Pkg:        tpkg,
		Info:       info,
		Directives: ParseDirectives(fset, files),
	}, nil
}

func checkPackage(fset *token.FileSet, imp types.Importer, p *listedPackage) (*Package, error) {
	if len(p.GoFiles) == 0 {
		return nil, fmt.Errorf("gossiplint: %s: no Go files", p.ImportPath)
	}
	filenames := make([]string, len(p.GoFiles))
	for i, f := range p.GoFiles {
		filenames[i] = filepath.Join(p.Dir, f)
	}
	return CheckFiles(fset, imp, p.ImportPath, filenames)
}

// moduleImporter resolves imports preferring packages already
// type-checked from source (module packages, so their type objects are
// shared across the whole module) and falling back to compiled export
// data for everything else.
type moduleImporter struct {
	module *Module
	gc     types.Importer
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := mi.module.Pkgs[path]; ok {
		return p.Pkg, nil
	}
	return mi.gc.Import(path)
}

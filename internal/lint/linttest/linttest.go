// Package linttest is the expectation harness for the gossiplint
// analyzers, modeled on golang.org/x/tools/go/analysis/analysistest:
// fixture packages under testdata/ carry `// want "regexp"` comments on
// the lines where an analyzer must report, the harness runs the
// analyzer over the fixture module and diffs actual diagnostics against
// the expectations in both directions. Each fixture directory is its
// own Go module, so deliberate contract violations never leak into the
// repository's real build.
package linttest

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"adaptivegossip/internal/lint"
)

// expectation is one `// want` clause: a line that must receive a
// diagnostic matching re.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`// want (.*)$`)

// Run loads the fixture module rooted at dir, applies the analyzers,
// and reports unmet expectations and unexpected diagnostics through t.
func Run(t *testing.T, dir string, analyzers ...*lint.Analyzer) {
	t.Helper()
	m, err := lint.LoadModule(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := lint.Run(m, analyzers)
	if err != nil {
		t.Fatalf("running analyzers over %s: %v", dir, err)
	}

	wants := collectWants(t, m)
	for _, d := range diags {
		pos := m.Fset.Position(d.Pos)
		if !claim(wants, pos, d.Message) {
			t.Errorf("%s: unexpected diagnostic [%s]: %s", pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func claim(wants []*expectation, pos token.Position, msg string) bool {
	for _, w := range wants {
		if w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

func collectWants(t *testing.T, m *lint.Module) []*expectation {
	t.Helper()
	var wants []*expectation
	m.EachPackage(func(p *lint.Package) {
		for _, file := range p.Files {
			for _, group := range file.Comments {
				for _, c := range group.List {
					wants = append(wants, parseWant(t, m.Fset, file, c)...)
				}
			}
		}
	})
	return wants
}

// parseWant extracts the quoted regexps of one `// want "re" "re"`
// comment. Both interpreted (") and raw (`) Go string syntax work.
func parseWant(t *testing.T, fset *token.FileSet, file *ast.File, c *ast.Comment) []*expectation {
	t.Helper()
	match := wantRE.FindStringSubmatch(c.Text)
	if match == nil {
		return nil
	}
	pos := fset.Position(c.Pos())
	var wants []*expectation
	rest := strings.TrimSpace(match[1])
	for rest != "" {
		lit, remainder, err := cutStringLit(rest)
		if err != nil {
			t.Fatalf("%s: malformed want comment %q: %v", pos, c.Text, err)
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			t.Fatalf("%s: bad want regexp %q: %v", pos, lit, err)
		}
		wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
		rest = strings.TrimSpace(remainder)
	}
	return wants
}

func cutStringLit(s string) (lit, rest string, err error) {
	if s == "" {
		return "", "", fmt.Errorf("empty clause")
	}
	quote := s[0]
	if quote != '"' && quote != '`' {
		return "", "", fmt.Errorf("expected a quoted regexp, found %q", s)
	}
	for i := 1; i < len(s); i++ {
		switch {
		case s[i] == '\\' && quote == '"':
			i++
		case s[i] == quote:
			unq, err := strconv.Unquote(s[:i+1])
			if err != nil {
				return "", "", err
			}
			return unq, s[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated string in %q", s)
}

// Package health disseminates per-node health digests over the gossip
// substrate itself: each node periodically folds its protocol counters
// and delivery-hop histogram into a compact gossip.HealthDigest and
// piggybacks a few digests — its own plus a round-robin relay of what
// it has heard — on every outgoing gossip message. Digests about the
// same node merge by freshness (higher gossip Round wins), so every
// member's view converges to the cluster-wide state within a few
// rounds, with no channels beyond the broadcast traffic that is
// already flowing.
package health

import (
	"sort"
	"sync"
	"time"

	"adaptivegossip/internal/gossip"
	"adaptivegossip/internal/observe"
)

// Defaults for Params fields left zero.
const (
	DefaultDigestsPerMessage = 4
	DefaultRefreshRounds     = 1
	DefaultMaxMembers        = 4096
)

// Params configures the health digest engine.
type Params struct {
	// Enabled turns dissemination on. A disabled engine attaches and
	// merges nothing (all hooks are no-ops).
	Enabled bool
	// DigestsPerMessage bounds how many digests ride one gossip
	// message: the node's own plus DigestsPerMessage-1 relayed ones.
	// Zero means DefaultDigestsPerMessage.
	DigestsPerMessage int
	// RefreshRounds is how many local rounds pass between re-snapshots
	// of the node's own digest. Zero means DefaultRefreshRounds.
	RefreshRounds int
	// MaxMembers bounds the remote-digest table; digests from further
	// nodes are counted as ignored. Zero means DefaultMaxMembers.
	MaxMembers int
}

func (p Params) withDefaults() Params {
	if p.DigestsPerMessage == 0 {
		p.DigestsPerMessage = DefaultDigestsPerMessage
	}
	if p.RefreshRounds == 0 {
		p.RefreshRounds = DefaultRefreshRounds
	}
	if p.MaxMembers == 0 {
		p.MaxMembers = DefaultMaxMembers
	}
	return p
}

// AugmentFunc lets the embedding layer enrich the self digest with
// facts the gossip node does not know — transport byte counters, the
// delivery-hop histogram — before it is attached to outgoing messages.
type AugmentFunc func(d *gossip.HealthDigest)

// Stats counts the engine's digest traffic.
type Stats struct {
	DigestsSent     uint64 // digests attached to outgoing messages
	DigestsReceived uint64 // digests seen on incoming messages
	DigestsMerged   uint64 // received digests that updated the table
	DigestsIgnored  uint64 // stale, self-describing, empty or over-capacity
}

// MemberHealth is one row of the converged cluster view.
type MemberHealth struct {
	Digest gossip.HealthDigest
	// UpdatedRound is the local engine round at which the digest was
	// last refreshed (self) or merged (remote).
	UpdatedRound uint64
	// StalenessRounds is how many local rounds ago that was.
	StalenessRounds uint64
}

type memberEntry struct {
	digest  gossip.HealthDigest
	updated uint64
}

// Engine is the gossip.Extension implementing digest dissemination.
// Hook methods run on the node's driver goroutine; accessors are safe
// from any goroutine.
type Engine struct {
	self    gossip.NodeID
	params  Params
	augment AugmentFunc

	// Now stamps WallMillis on self refreshes. Defaults to time.Now;
	// tests and simulations inject a fixed clock for determinism.
	Now func() time.Time

	mu      sync.Mutex
	round   uint64
	ownSet  bool
	own     gossip.HealthDigest
	members map[gossip.NodeID]*memberEntry
	order   []gossip.NodeID // sorted member ids, round-robin relay ring
	cursor  int
	stats   Stats
}

// New creates an engine for the named node.
func New(self gossip.NodeID, p Params, augment AugmentFunc) *Engine {
	return &Engine{
		self:    self,
		params:  p.withDefaults(),
		augment: augment,
		Now:     time.Now,
		members: make(map[gossip.NodeID]*memberEntry),
	}
}

// OnTick refreshes the self digest on its cadence and piggybacks the
// digest budget — self first, then a round-robin window over the known
// members — onto the outgoing message. Steady-state it allocates
// nothing: digests append into the message's reused Health scratch.
//
//gossip:hotpath
func (e *Engine) OnTick(n *gossip.Node, out *gossip.Message) {
	if !e.params.Enabled {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.round++
	if !e.ownSet || (e.round-1)%uint64(e.params.RefreshRounds) == 0 {
		e.refreshSelfLocked(n)
	}
	out.Health = append(out.Health, e.own)
	e.stats.DigestsSent++
	relay := e.params.DigestsPerMessage - 1
	for i := 0; i < relay && i < len(e.order); i++ {
		if e.cursor >= len(e.order) {
			e.cursor = 0
		}
		id := e.order[e.cursor]
		e.cursor++
		out.Health = append(out.Health, e.members[id].digest)
		e.stats.DigestsSent++
	}
}

// OnReceive merges piggybacked digests into the member table. For each
// node the freshest digest wins (higher origin Round); digests about
// the receiver itself, empty ones, and ones past the MaxMembers bound
// are ignored.
//
//gossip:hotpath
func (e *Engine) OnReceive(n *gossip.Node, in *gossip.Message) {
	if !e.params.Enabled || len(in.Health) == 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for i := range in.Health {
		d := &in.Health[i]
		e.stats.DigestsReceived++
		if d.Node == "" || d.Node == e.self {
			e.stats.DigestsIgnored++
			continue
		}
		if ent, ok := e.members[d.Node]; ok {
			if d.Round > ent.digest.Round {
				ent.digest = *d
				ent.updated = e.round
				e.stats.DigestsMerged++
			} else {
				e.stats.DigestsIgnored++
			}
			continue
		}
		if len(e.members) >= e.params.MaxMembers {
			e.stats.DigestsIgnored++
			continue
		}
		//gossip:allocok one-time per newly discovered member, bounded by MaxMembers
		e.members[d.Node] = &memberEntry{digest: *d, updated: e.round}
		e.insertOrderLocked(d.Node)
		e.stats.DigestsMerged++
	}
}

// OnEvicted is a no-op; the engine tracks no per-event state.
func (e *Engine) OnEvicted(*gossip.Node, []gossip.Event, gossip.EvictReason) {}

func (e *Engine) insertOrderLocked(id gossip.NodeID) {
	i := sort.Search(len(e.order), func(i int) bool { return e.order[i] >= id })
	e.order = append(e.order, "")
	copy(e.order[i+1:], e.order[i:])
	e.order[i] = id
	if i < e.cursor {
		e.cursor++
	}
}

func (e *Engine) refreshSelfLocked(n *gossip.Node) {
	s := n.Stats()
	d := gossip.HealthDigest{
		Node:             e.self,
		Round:            n.Round(),
		WallMillis:       uint64(e.Now().UnixMilli()),
		Published:        s.Broadcasts,
		Delivered:        s.Delivered,
		DroppedCapacity:  s.DroppedCapacity,
		DroppedExpired:   s.DroppedExpired,
		MessagesSent:     s.MessagesSent,
		MessagesReceived: s.MessagesReceived,
		BufferLen:        n.BufferLen(),
		BufferCap:        n.BufferCapacity(),
	}
	if e.augment != nil {
		e.augment(&d)
	}
	e.own = d
	e.ownSet = true
}

// Stats returns the digest traffic counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Members reports how many nodes the engine has a digest for,
// including itself once it has ticked.
func (e *Engine) Members() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := len(e.members)
	if e.ownSet {
		n++
	}
	return n
}

// Snapshot returns the converged cluster view, sorted by node id. The
// engine's own digest is included with zero staleness.
func (e *Engine) Snapshot() []MemberHealth {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]MemberHealth, 0, len(e.members)+1)
	for _, id := range e.order {
		ent := e.members[id]
		out = append(out, MemberHealth{
			Digest:          ent.digest,
			UpdatedRound:    ent.updated,
			StalenessRounds: e.round - ent.updated,
		})
	}
	if e.ownSet {
		out = append(out, MemberHealth{Digest: e.own, UpdatedRound: e.round})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Digest.Node < out[j].Digest.Node })
	return out
}

// MergedDeliverHops folds every known digest's delivery-hop histogram
// (own included) into one cluster-wide snapshot.
func (e *Engine) MergedDeliverHops() (m observe.HistogramSnapshot) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.ownSet {
		m = e.own.DeliverHops
	}
	for _, ent := range e.members {
		m.Merge(ent.digest.DeliverHops)
	}
	return m
}

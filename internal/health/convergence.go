package health

import (
	"fmt"
	"math/rand/v2"
	"time"

	"adaptivegossip/internal/gossip"
	"adaptivegossip/internal/membership"
)

// ConvergenceRound records one round of a dissemination experiment.
type ConvergenceRound struct {
	Round int
	// MinCoverage / MeanCoverage are the smallest and mean fraction of
	// the cluster each node has a digest for (own digest included).
	MinCoverage  float64
	MeanCoverage float64
	// FullNodes counts nodes whose view covers the whole cluster.
	FullNodes int
}

// ConvergenceResult summarizes a digest dissemination experiment.
type ConvergenceResult struct {
	Nodes             int
	Fanout            int
	DigestsPerMessage int
	// RoundsToFull is the first round after which every node holds a
	// digest for every member, or 0 if maxRounds elapsed first.
	RoundsToFull int
	Trace        []ConvergenceRound
}

// RunConvergence measures how quickly piggybacked health digests reach
// full cluster coverage: n gossip nodes on a synchronous lossless
// in-process fabric, fanout F, the given digest budget per message, and
// a deterministic seed. It returns after every node knows every member
// or maxRounds rounds, whichever comes first. Both the n>=1000
// convergence test and the gossipsim healthdigest figure drive it.
func RunConvergence(n, fanout, digestsPerMessage, maxRounds int, seed int64) (ConvergenceResult, error) {
	res := ConvergenceResult{Nodes: n, Fanout: fanout, DigestsPerMessage: digestsPerMessage}
	if n < 2 {
		return res, fmt.Errorf("health: convergence needs at least 2 nodes, got %d", n)
	}

	ids := make([]gossip.NodeID, n)
	for i := range ids {
		ids[i] = gossip.NodeID(fmt.Sprintf("n%04d", i))
	}
	reg := membership.NewRegistry(ids...)
	params := gossip.Params{
		Fanout:    fanout,
		Period:    time.Second, // unused: rounds are driven directly
		MaxEvents: 32,
		MaxAge:    8,
	}

	nodes := make([]*gossip.Node, n)
	engines := make([]*Engine, n)
	index := make(map[gossip.NodeID]int, n)
	epoch := time.Unix(1_700_000_000, 0)
	for i, id := range ids {
		eng := New(id, Params{Enabled: true, DigestsPerMessage: digestsPerMessage}, nil)
		eng.Now = func() time.Time { return epoch }
		node, err := gossip.NewNode(id, params, reg,
			rand.New(rand.NewPCG(uint64(seed), uint64(i))),
			gossip.WithExtensions(eng))
		if err != nil {
			return res, err
		}
		nodes[i] = node
		engines[i] = eng
		index[id] = i
	}

	for round := 1; round <= maxRounds; round++ {
		// Tick all nodes, delivering each fan-out synchronously before
		// the sender's next Tick invalidates the scratch message —
		// receivers do not retain it, so no clone is needed.
		for _, node := range nodes {
			for _, out := range node.Tick() {
				nodes[index[out.To]].Receive(out.Msg)
			}
		}
		var minCov, sumCov float64
		minCov = 1
		full := 0
		for _, eng := range engines {
			cov := float64(eng.Members()) / float64(n)
			sumCov += cov
			if cov < minCov {
				minCov = cov
			}
			if eng.Members() == n {
				full++
			}
		}
		res.Trace = append(res.Trace, ConvergenceRound{
			Round:        round,
			MinCoverage:  minCov,
			MeanCoverage: sumCov / float64(n),
			FullNodes:    full,
		})
		if full == n {
			res.RoundsToFull = round
			break
		}
	}
	return res, nil
}

//go:build !race

package health

// raceEnabled reports whether the race detector is active; large-scale
// convergence tests shrink under it.
const raceEnabled = false

package health

import (
	"math/rand/v2"
	"testing"
	"time"

	"adaptivegossip/internal/gossip"
	"adaptivegossip/internal/membership"
	"adaptivegossip/internal/observe"
)

func testNode(t *testing.T, id gossip.NodeID, exts ...gossip.Extension) *gossip.Node {
	t.Helper()
	reg := membership.NewRegistry(id, "peer-a", "peer-b")
	n, err := gossip.NewNode(id, gossip.Params{
		Fanout: 2, Period: time.Second, MaxEvents: 16, MaxAge: 5,
	}, reg, rand.New(rand.NewPCG(1, 1)), gossip.WithExtensions(exts...))
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func fixedClock() time.Time { return time.Unix(1_700_000_000, 42e6) }

func digestFor(node gossip.NodeID, round uint64) gossip.HealthDigest {
	return gossip.HealthDigest{Node: node, Round: round, Delivered: round * 10}
}

func TestEngineDisabledIsNoOp(t *testing.T) {
	e := New("self", Params{}, nil)
	n := testNode(t, "self", e)
	out := n.Tick()
	if len(out) == 0 {
		t.Fatal("expected fan-out")
	}
	if len(out[0].Msg.Health) != 0 {
		t.Fatalf("disabled engine attached digests: %v", out[0].Msg.Health)
	}
	n.Receive(&gossip.Message{From: "peer-a", Health: []gossip.HealthDigest{digestFor("peer-a", 3)}})
	if got := e.Members(); got != 0 {
		t.Fatalf("disabled engine merged digests: %d members", got)
	}
}

func TestEngineAttachesSelfAndRelays(t *testing.T) {
	e := New("self", Params{Enabled: true, DigestsPerMessage: 3}, nil)
	e.Now = fixedClock
	n := testNode(t, "self", e)

	out := n.Tick()
	h := out[0].Msg.Health
	if len(h) != 1 {
		t.Fatalf("first tick: want own digest only, got %d", len(h))
	}
	if h[0].Node != "self" || h[0].WallMillis != uint64(fixedClock().UnixMilli()) {
		t.Fatalf("own digest malformed: %+v", h[0])
	}

	// Learn four members; budget 3 = self + 2 relayed, round-robin.
	for _, id := range []gossip.NodeID{"d", "b", "c", "a"} {
		n.Receive(&gossip.Message{From: id, Health: []gossip.HealthDigest{digestFor(id, 1)}})
	}
	seen := map[gossip.NodeID]int{}
	for i := 0; i < 2; i++ {
		h = n.Tick()[0].Msg.Health
		if len(h) != 3 {
			t.Fatalf("tick %d: want 3 digests, got %d", i, len(h))
		}
		if h[0].Node != "self" {
			t.Fatalf("tick %d: own digest not first: %v", i, h[0].Node)
		}
		for _, d := range h[1:] {
			seen[d.Node]++
		}
	}
	// Two ticks x two relays cycle the whole four-member ring once.
	for _, id := range []gossip.NodeID{"a", "b", "c", "d"} {
		if seen[id] != 1 {
			t.Fatalf("round-robin skipped or repeated %s: %v", id, seen)
		}
	}
}

func TestEngineMergeFreshnessWins(t *testing.T) {
	e := New("self", Params{Enabled: true}, nil)
	n := testNode(t, "self", e)

	n.Receive(&gossip.Message{From: "peer-a", Health: []gossip.HealthDigest{digestFor("peer-a", 5)}})
	n.Receive(&gossip.Message{From: "peer-b", Health: []gossip.HealthDigest{
		digestFor("peer-a", 3), // stale: ignored
		digestFor("peer-a", 9), // fresher: wins
		digestFor("self", 100), // about the receiver: ignored
		{},                     // empty node: ignored
		digestFor("peer-b", 1), // new member
	}})

	snap := e.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("want 2 members (self has not ticked), got %d", len(snap))
	}
	if snap[0].Digest.Node != "peer-a" || snap[0].Digest.Round != 9 {
		t.Fatalf("freshest digest did not win: %+v", snap[0].Digest)
	}
	if snap[1].Digest.Node != "peer-b" {
		t.Fatalf("snapshot not sorted: %+v", snap)
	}
	st := e.Stats()
	if st.DigestsReceived != 6 || st.DigestsMerged != 3 || st.DigestsIgnored != 3 {
		t.Fatalf("stats mismatch: %+v", st)
	}
}

func TestEngineMaxMembersBound(t *testing.T) {
	e := New("self", Params{Enabled: true, MaxMembers: 2}, nil)
	n := testNode(t, "self", e)
	for _, id := range []gossip.NodeID{"a", "b", "c"} {
		n.Receive(&gossip.Message{From: id, Health: []gossip.HealthDigest{digestFor(id, 1)}})
	}
	if got := e.Members(); got != 2 {
		t.Fatalf("member table exceeded bound: %d", got)
	}
	if st := e.Stats(); st.DigestsIgnored != 1 {
		t.Fatalf("over-capacity digest not counted ignored: %+v", st)
	}
}

func TestEngineAugmentAndMergedHops(t *testing.T) {
	e := New("self", Params{Enabled: true}, func(d *gossip.HealthDigest) {
		d.BytesSent = 4096
		d.DeliverHops = observe.HistogramSnapshot{Count: 2, Sum: 3}
	})
	e.Now = fixedClock
	n := testNode(t, "self", e)
	n.Tick()

	remote := digestFor("peer-a", 1)
	remote.DeliverHops = observe.HistogramSnapshot{Count: 5, Sum: 11}
	n.Receive(&gossip.Message{From: "peer-a", Health: []gossip.HealthDigest{remote}})

	snap := e.Snapshot()
	var own *gossip.HealthDigest
	for i := range snap {
		if snap[i].Digest.Node == "self" {
			own = &snap[i].Digest
		}
	}
	if own == nil || own.BytesSent != 4096 {
		t.Fatalf("augment did not reach self digest: %+v", snap)
	}
	merged := e.MergedDeliverHops()
	if merged.Count != 7 || merged.Sum != 14 {
		t.Fatalf("merged hops mismatch: %+v", merged)
	}
}

func TestEngineStaleness(t *testing.T) {
	e := New("self", Params{Enabled: true}, nil)
	n := testNode(t, "self", e)
	n.Receive(&gossip.Message{From: "peer-a", Health: []gossip.HealthDigest{digestFor("peer-a", 1)}})
	n.Tick()
	n.Tick()
	n.Tick()
	for _, m := range e.Snapshot() {
		switch m.Digest.Node {
		case "peer-a":
			if m.StalenessRounds != 3 {
				t.Fatalf("peer-a staleness: want 3 rounds, got %d", m.StalenessRounds)
			}
		case "self":
			if m.StalenessRounds != 0 {
				t.Fatalf("self staleness: want 0, got %d", m.StalenessRounds)
			}
		}
	}
}

// TestConvergenceLargeCluster is the issue's acceptance experiment: at
// n>=1000 nodes the piggybacked digests must reach full cluster
// coverage, and coverage must be monotonically non-decreasing.
func TestConvergenceLargeCluster(t *testing.T) {
	n := 1000
	if testing.Short() || raceEnabled {
		n = 200
	}
	res, err := RunConvergence(n, 4, 64, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.RoundsToFull == 0 {
		last := res.Trace[len(res.Trace)-1]
		t.Fatalf("no full coverage after %d rounds: min=%.3f mean=%.3f full=%d",
			len(res.Trace), last.MinCoverage, last.MeanCoverage, last.FullNodes)
	}
	t.Logf("n=%d fanout=4 digests/msg=64: full coverage in %d rounds", n, res.RoundsToFull)
	prev := 0.0
	for _, r := range res.Trace {
		if r.MeanCoverage+1e-9 < prev {
			t.Fatalf("mean coverage regressed at round %d: %.4f < %.4f", r.Round, r.MeanCoverage, prev)
		}
		prev = r.MeanCoverage
	}
}

func TestConvergenceSmall(t *testing.T) {
	res, err := RunConvergence(8, 3, 4, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.RoundsToFull == 0 {
		t.Fatal("8-node cluster did not converge in 50 rounds")
	}
	if res.Trace[len(res.Trace)-1].FullNodes != 8 {
		t.Fatalf("last round not full: %+v", res.Trace[len(res.Trace)-1])
	}
}

func TestConvergenceRejectsTinyCluster(t *testing.T) {
	if _, err := RunConvergence(1, 2, 4, 10, 1); err == nil {
		t.Fatal("1-node cluster accepted")
	}
}

package observe

import (
	"math"
	"sync"
	"time"
)

// TraceStage labels one transition in a rumor's lifecycle.
type TraceStage uint8

const (
	// StagePublish: the event was originated (and self-delivered) at
	// its origin node.
	StagePublish TraceStage = iota + 1
	// StageFirstSend: the origin addressed the event to gossip targets
	// for the first time.
	StageFirstSend
	// StageReceive: a node received a copy of the event (duplicate or
	// not).
	StageReceive
	// StageDeliver: a node delivered the event to the application
	// (first copy only).
	StageDeliver
	// StageDrop: a node evicted the event from its buffer.
	StageDrop
)

// String returns the stage name used in trace output.
func (s TraceStage) String() string {
	switch s {
	case StagePublish:
		return "publish"
	case StageFirstSend:
		return "first-send"
	case StageReceive:
		return "receive"
	case StageDeliver:
		return "deliver"
	case StageDrop:
		return "drop"
	default:
		return "unknown"
	}
}

// TraceEvent is one sampled rumor-lifecycle transition. Origin and Seq
// identify the rumor (they are the two halves of its event ID); Node is
// where the transition happened; From is the sending node for
// StageReceive/StageDeliver when known (empty at the origin's own
// stages); Hop is the rumor's hop count at the transition — exact when
// the sender propagated wire trace context (wire v4), otherwise the
// event's age (ages advance once per round at every holder, so the age
// approximates the hop count); Round is the observing node's gossip
// round. Reason is set for StageDrop ("capacity", "expired", "resize").
//
// TraceEvent is a plain value: building and passing one allocates
// nothing, which keeps the sampled-out hot path cheap.
type TraceEvent struct {
	Origin string
	Seq    uint64
	Stage  TraceStage
	Node   string
	From   string
	Hop    int
	Round  uint64
	Reason string
}

// Tracer observes sampled rumor-lifecycle transitions. The protocol
// hot path guards every use with a nil check — a nil Tracer is the
// zero-overhead default — and asks Sampled before building a
// TraceEvent, so unsampled rumors cost one hash per touch.
//
// Implementations must be safe for concurrent use: several node loops
// may share one Tracer.
type Tracer interface {
	// Sampled reports whether the rumor identified by (origin, seq)
	// is in the traced sample. It must be deterministic: every node
	// asking about the same rumor gets the same answer, so a sampled
	// rumor's full cross-node path is captured.
	Sampled(origin string, seq uint64) bool
	// Trace records one transition of a sampled rumor.
	Trace(e TraceEvent)
}

// TraceRecord is a recorded transition: the TraceEvent plus the
// recorder's arrival stamps (a global sequence number that orders
// records across nodes, and the wall-clock receive time).
type TraceRecord struct {
	TraceEvent
	// Index is the global arrival index of this record (monotonic
	// across all traced rumors).
	Index uint64
	// Time is the wall-clock instant the record was made.
	Time time.Time
}

// DefaultTraceCapacity is the ring capacity of a Recorder when the
// configured capacity is zero.
const DefaultTraceCapacity = 4096

// Recorder is a sampling Tracer that retains the most recent trace
// records in a fixed ring buffer. The ring is allocated once at
// construction; recording overwrites the oldest slot, so a Recorder
// never allocates after construction and is safe to leave attached to
// a production node.
type Recorder struct {
	threshold uint64 // sample iff hash(origin,seq) < threshold

	mu   sync.Mutex
	ring []TraceRecord
	next uint64 // total records ever written
}

// NewRecorder returns a Recorder sampling the given fraction of rumors
// (rate clamped to [0,1]; 0 records nothing, 1 records everything)
// with a ring of the given capacity (0 means DefaultTraceCapacity).
func NewRecorder(rate float64, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	// The sampling decision compares the top 32 bits of the rumor hash
	// against a 32-bit threshold: rate×2^32 is exactly representable
	// for every rate in [0,1), avoiding float→uint64 edge cases at the
	// extremes.
	var threshold uint64
	if rate >= 1 {
		threshold = math.MaxUint64
	} else {
		threshold = uint64(rate * float64(1<<32))
	}
	return &Recorder{
		threshold: threshold,
		ring:      make([]TraceRecord, 0, capacity),
	}
}

// hashID hashes a rumor identifier with FNV-1a, allocation-free. The
// hash only depends on (origin, seq), so every node samples the same
// rumors — the property that lets a single rumor's cross-node path be
// reassembled from per-node records.
func hashID(origin string, seq uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(origin); i++ {
		h ^= uint64(origin[i])
		h *= prime64
	}
	for i := 0; i < 8; i++ {
		h ^= (seq >> (8 * i)) & 0xff
		h *= prime64
	}
	return h
}

// Sampled reports whether the rumor is in the recorded sample.
func (r *Recorder) Sampled(origin string, seq uint64) bool {
	if r.threshold == 0 {
		return false
	}
	if r.threshold == math.MaxUint64 {
		return true
	}
	return hashID(origin, seq)>>32 < r.threshold
}

// Trace records the transition, overwriting the oldest record when the
// ring is full.
func (r *Recorder) Trace(e TraceEvent) {
	now := time.Now()
	r.mu.Lock()
	rec := TraceRecord{TraceEvent: e, Index: r.next, Time: now}
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, rec)
	} else {
		r.ring[r.next%uint64(cap(r.ring))] = rec
	}
	r.next++
	r.mu.Unlock()
}

// Len reports the number of retained records.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ring)
}

// Records returns the retained records in arrival order (oldest
// first).
func (r *Recorder) Records() []TraceRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceRecord, 0, len(r.ring))
	if len(r.ring) < cap(r.ring) {
		return append(out, r.ring...)
	}
	start := r.next % uint64(cap(r.ring))
	out = append(out, r.ring[start:]...)
	out = append(out, r.ring[:start]...)
	return out
}

// Path returns the retained records of one rumor in arrival order —
// its reconstructed publish → first-send → receive → deliver/drop
// trajectory across every node sharing this recorder.
func (r *Recorder) Path(origin string, seq uint64) []TraceRecord {
	all := r.Records()
	out := all[:0]
	for _, rec := range all {
		if rec.Origin == origin && rec.Seq == seq {
			out = append(out, rec)
		}
	}
	return out
}

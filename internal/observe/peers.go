package observe

import (
	"sort"
	"sync"
)

// DefaultPeerTableCapacity bounds a PeerTable when the configured
// capacity is zero or negative. Gossip groups are small (the paper's
// testbed is 60 workstations); 1024 leaves room for churn without
// letting a hostile peer list grow the table unboundedly.
const DefaultPeerTableCapacity = 1024

// PeerStats is the per-peer link instrument block: what this group sent
// toward and received from one remote peer, plus the RTT distribution
// harvested from the failure detector's ping/ping-ack exchange. All
// fields are alloc-free atomics, so transports update them from their
// hot paths without violating the zero-allocation round contracts.
type PeerStats struct {
	// MessagesSent counts datagrams (or fabric messages) sent to the
	// peer, after loss injection.
	MessagesSent Counter
	// BytesSent counts wire bytes sent to the peer (zero on fabrics
	// that do not serialize).
	BytesSent Counter
	// MessagesReceived counts datagrams received from the peer (keyed
	// by the decoded sender id).
	MessagesReceived Counter
	// BytesReceived counts wire bytes received from the peer.
	BytesReceived Counter
	// FanoutSends counts times the peer was a SendMany fanout target.
	FanoutSends Counter
	// Drops counts outgoing datagrams to the peer dropped by injected
	// loss.
	Drops Counter
	// SendErrors counts failed sends to the peer (socket errors,
	// unknown address).
	SendErrors Counter
	// RTTMicros distributes ping→ack round-trip times to the peer, in
	// microseconds (empty unless the failure detector runs with a link
	// table attached).
	RTTMicros Histogram
}

// PeerSnapshot is an immutable copy of one peer's link stats.
type PeerSnapshot struct {
	Peer             string
	MessagesSent     uint64
	BytesSent        uint64
	MessagesReceived uint64
	BytesReceived    uint64
	FanoutSends      uint64
	Drops            uint64
	SendErrors       uint64
	RTT              HistogramSnapshot
}

// PeerTable is a fixed-capacity table of per-peer link stats shared by
// a group's transports and failure detector. Get is the hot-path
// accessor: after a peer's first touch it is a read-locked map hit that
// never allocates, so per-datagram accounting stays compatible with the
// alloc-free round contracts. Once the capacity is reached new peers
// are not admitted (counted in Overflow) — a hostile peer list cannot
// grow the table.
type PeerTable struct {
	capacity int

	mu       sync.RWMutex
	peers    map[string]*PeerStats
	overflow Counter
}

// NewPeerTable creates a table bounded at capacity entries (zero or
// negative means DefaultPeerTableCapacity).
func NewPeerTable(capacity int) *PeerTable {
	if capacity <= 0 {
		capacity = DefaultPeerTableCapacity
	}
	return &PeerTable{
		capacity: capacity,
		peers:    make(map[string]*PeerStats),
	}
}

// Get returns the stats block for peer, creating it on first touch. It
// returns nil for the empty id and for new peers beyond the capacity
// bound; callers skip accounting in that case.
func (t *PeerTable) Get(peer string) *PeerStats {
	if peer == "" {
		return nil
	}
	t.mu.RLock()
	ps := t.peers[peer]
	t.mu.RUnlock()
	if ps != nil {
		return ps
	}
	return t.insert(peer)
}

// insert is the cold path of Get: admit the peer under the write lock,
// re-checking both existence and the capacity bound.
//
//gossip:allocok first-contact admission of a new peer, bounded by the table capacity
func (t *PeerTable) insert(peer string) *PeerStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ps, ok := t.peers[peer]; ok {
		return ps
	}
	if len(t.peers) >= t.capacity {
		t.overflow.Inc()
		return nil
	}
	ps := &PeerStats{}
	t.peers[peer] = ps
	return ps
}

// Len reports the number of tracked peers.
func (t *PeerTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.peers)
}

// Overflow counts peers rejected by the capacity bound.
func (t *PeerTable) Overflow() uint64 { return t.overflow.Load() }

// Snapshot copies every peer's counters, sorted by peer id so
// expositions are stable scrape over scrape.
func (t *PeerTable) Snapshot() []PeerSnapshot {
	t.mu.RLock()
	out := make([]PeerSnapshot, 0, len(t.peers))
	for peer, ps := range t.peers {
		out = append(out, PeerSnapshot{
			Peer:             peer,
			MessagesSent:     ps.MessagesSent.Load(),
			BytesSent:        ps.BytesSent.Load(),
			MessagesReceived: ps.MessagesReceived.Load(),
			BytesReceived:    ps.BytesReceived.Load(),
			FanoutSends:      ps.FanoutSends.Load(),
			Drops:            ps.Drops.Load(),
			SendErrors:       ps.SendErrors.Load(),
			RTT:              ps.RTTMicros.Snapshot(),
		})
	}
	t.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

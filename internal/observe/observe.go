// Package observe is the protocol observability layer: an alloc-free
// instrumentation core (atomic counters, gauges and fixed-bucket
// histograms the gossip hot path can update without violating the
// zero-allocation round contracts), a sampling rumor-lifecycle tracer,
// and an opt-in debug HTTP server exposing everything as expvar-style
// JSON, Prometheus text format and net/http/pprof.
//
// The package sits below every protocol package (it imports nothing
// from the repository), so gossip, runtime, sim and the public facades
// can all share one set of instrument types. The discrete-event
// simulator uses the same Histogram as the live runtime, which is what
// lets figure sweeps report the p50/p95/p99 delivery-latency and
// hop-count distributions the debug endpoint serves on a live node.
package observe

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomically settable float64 level. The zero value is
// ready to use and reads 0.
type Gauge struct{ bits atomic.Uint64 }

// Set stores the current level.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Load returns the current level.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// NumBuckets is the fixed bucket count of Histogram: one bucket per
// power-of-two magnitude of a uint64 observation (bucket i counts
// values v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i)), plus
// bucket 0 for exact zeros. The bounds are fixed at compile time, so
// Observe is a pair of atomic adds — no sizing, no allocation, no lock.
const NumBuckets = 65

// Histogram is a fixed-bucket histogram with power-of-two bucket
// bounds, safe for concurrent use. The zero value is ready to use.
//
// Observe performs three atomic adds and never allocates, which is
// what lets the gossip hot path (Tick/Receive) update histograms while
// keeping its AllocsPerRun == 0 contracts. Values saturate into the
// top bucket rather than overflowing: every uint64 maps to a bucket.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [NumBuckets]atomic.Uint64
}

// bucketIndex maps a value to its bucket: 0 → 0, v ≥ 1 → bits.Len64(v)
// (so 1 → 1, [2,4) → 2, [4,8) → 3, ...). The result is always within
// [0, NumBuckets).
func bucketIndex(v uint64) int { return bits.Len64(v) }

// BucketLow returns the inclusive lower bound of bucket i.
func BucketLow(i int) uint64 {
	if i <= 1 {
		return uint64(i)
	}
	return 1 << (i - 1)
}

// BucketHigh returns the exclusive upper bound of bucket i (MaxUint64
// for the saturating top bucket).
func BucketHigh(i int) uint64 {
	if i == 0 {
		return 1
	}
	if i >= 64 {
		return math.MaxUint64
	}
	return 1 << i
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
}

// ObserveInt records a scalar (durations in the caller's unit, counts,
// sizes); negative values clamp to zero.
func (h *Histogram) ObserveInt(v int64) {
	if v < 0 {
		v = 0
	}
	h.Observe(uint64(v))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snapshot captures a point-in-time copy of the histogram. The copy is
// internally consistent enough for monitoring (each counter is read
// once; a concurrent Observe may straddle the reads).
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is an immutable copy of a Histogram, the unit the
// sim sweeps aggregate and the debug endpoint serializes.
type HistogramSnapshot struct {
	Count   uint64
	Sum     uint64
	Buckets [NumBuckets]uint64
}

// Merge folds another snapshot into this one (pooling observations).
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Mean returns the exact mean of the observed values (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-quantile (q in [0,1]) by rank-interpolating
// within the containing power-of-two bucket. It returns 0 for an empty
// histogram. Because bucket bounds are powers of two, the estimate is
// exact to within a factor of two and typically much closer.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		prev := cum
		cum += c
		if float64(cum) >= rank {
			lo := float64(BucketLow(i))
			hi := float64(BucketHigh(i))
			if i >= 64 { // saturating top bucket: no finite width
				return lo
			}
			frac := (rank - float64(prev)) / float64(c)
			return lo + frac*(hi-lo)
		}
	}
	return float64(BucketHigh(NumBuckets - 1))
}

// NodeMetrics is the per-node instrumentation block the gossip state
// machine updates in its hot path. All fields are alloc-free atomics;
// one NodeMetrics may be shared by several state machines (e.g. the
// per-topic nodes of a pub/sub peer), in which case the histograms
// pool their observations.
type NodeMetrics struct {
	// DeliverHops distributes the age (≈ hop count) at which events
	// were delivered — the dissemination-depth distribution related
	// work evaluates gossip protocols on.
	DeliverHops Histogram
	// DropAge distributes the age at which events were evicted by
	// buffer pressure — the paper's §2.3 congestion signal, now as a
	// distribution rather than a running mean.
	DropAge Histogram
	// RoundEvents distributes the events carried per outgoing round
	// message (buffer occupancy as seen on the wire).
	RoundEvents Histogram
}

// RunnerMetrics is the per-driver instrumentation block a real-time
// runner updates: wall-clock processing latencies of the two protocol
// entry points, in nanoseconds.
type RunnerMetrics struct {
	// TickNanos distributes the duration of one gossip round
	// (Tick + send handoff), in nanoseconds.
	TickNanos Histogram
	// ReceiveNanos distributes the duration of one inbound message's
	// processing, in nanoseconds.
	ReceiveNanos Histogram
}

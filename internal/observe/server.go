package observe

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Server is the opt-in debug listener: it serves every registered
// instrument as expvar-style JSON on /debug/vars, as Prometheus text
// format on /metrics, the runtime profiles on /debug/pprof/, and the
// retained rumor traces on /debug/gossip/traces. A Server is bound at
// construction and serves until Close.
//
// Registration is name-keyed; names should be Prometheus-compatible
// ([a-z0-9_]). Snapshot functions run on the scrape goroutine, so they
// must be safe to call concurrently with the instrumented code (the
// facades satisfy this by reading loop-serialized snapshots and atomic
// instruments).
type Server struct {
	ln  net.Listener
	srv *http.Server

	mu     sync.Mutex
	vars   map[string]func() any
	gauges map[string]func() float64
	counts map[string]func() uint64
	hists  map[string]func() HistogramSnapshot
	traces func() []TraceRecord
}

// NewServer binds addr (host:port; ":0" picks a free port) and starts
// serving the debug endpoints.
func NewServer(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("observe: debug listener: %w", err)
	}
	s := &Server{
		ln:     ln,
		vars:   make(map[string]func() any),
		gauges: make(map[string]func() float64),
		counts: make(map[string]func() uint64),
		hists:  make(map[string]func() HistogramSnapshot),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/vars", s.serveVars)
	mux.HandleFunc("/metrics", s.serveMetrics)
	mux.HandleFunc("/debug/gossip/traces", s.serveTraces)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener. In-flight scrapes are abandoned.
func (s *Server) Close() error { return s.srv.Close() }

// PublishVar registers a JSON-marshalable snapshot under name on
// /debug/vars.
func (s *Server) PublishVar(name string, fn func() any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.vars[name] = fn
}

// PublishCounter registers a monotonic counter on /metrics (and
// /debug/vars).
func (s *Server) PublishCounter(name string, fn func() uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counts[name] = fn
}

// PublishGauge registers a gauge level on /metrics (and /debug/vars).
func (s *Server) PublishGauge(name string, fn func() float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gauges[name] = fn
}

// PublishHistogram registers a histogram on /metrics (and /debug/vars,
// as {count, sum, p50, p95, p99}).
func (s *Server) PublishHistogram(name string, fn func() HistogramSnapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hists[name] = fn
}

// PublishTraces registers the rumor-trace source served on
// /debug/gossip/traces.
func (s *Server) PublishTraces(fn func() []TraceRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.traces = fn
}

// snapshotRegistry copies the registration maps so scrapes never hold
// the registration lock while running snapshot functions.
func (s *Server) snapshotRegistry() (vars map[string]func() any, counts map[string]func() uint64, gauges map[string]func() float64, hists map[string]func() HistogramSnapshot, traces func() []TraceRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	vars = make(map[string]func() any, len(s.vars))
	for k, v := range s.vars {
		vars[k] = v
	}
	counts = make(map[string]func() uint64, len(s.counts))
	for k, v := range s.counts {
		counts[k] = v
	}
	gauges = make(map[string]func() float64, len(s.gauges))
	for k, v := range s.gauges {
		gauges[k] = v
	}
	hists = make(map[string]func() HistogramSnapshot, len(s.hists))
	for k, v := range s.hists {
		hists[k] = v
	}
	return vars, counts, gauges, hists, s.traces
}

// serveVars renders every registered instrument as one JSON object, in
// the spirit of package expvar: counters and gauges as numbers,
// histograms as summary objects, vars as their marshaled snapshots,
// plus the standard "memstats" block.
func (s *Server) serveVars(w http.ResponseWriter, _ *http.Request) {
	vars, counts, gauges, hists, _ := s.snapshotRegistry()
	out := make(map[string]any, len(vars)+len(counts)+len(gauges)+len(hists)+1)
	for name, fn := range vars {
		out[name] = fn()
	}
	for name, fn := range counts {
		out[name] = fn()
	}
	for name, fn := range gauges {
		out[name] = fn()
	}
	for name, fn := range hists {
		snap := fn()
		out[name] = map[string]any{
			"count": snap.Count,
			"sum":   snap.Sum,
			"mean":  snap.Mean(),
			"p50":   snap.Quantile(0.50),
			"p95":   snap.Quantile(0.95),
			"p99":   snap.Quantile(0.99),
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	out["memstats"] = map[string]any{
		"Alloc":      ms.Alloc,
		"TotalAlloc": ms.TotalAlloc,
		"Sys":        ms.Sys,
		"NumGC":      ms.NumGC,
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}

// serveMetrics renders the Prometheus text exposition format.
func (s *Server) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	_, counts, gauges, hists, _ := s.snapshotRegistry()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	for _, name := range sortedKeys(counts) {
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", name, name, counts[name]())
	}
	for _, name := range sortedKeys(gauges) {
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %g\n", name, name, gauges[name]())
	}
	for _, name := range sortedKeys(hists) {
		snap := hists[name]()
		fmt.Fprintf(&b, "# TYPE %s histogram\n", name)
		var cum uint64
		for i, c := range snap.Buckets {
			if c == 0 {
				continue
			}
			cum += c
			fmt.Fprintf(&b, "%s_bucket{le=\"%d\"} %d\n", name, BucketHigh(i)-1, cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, snap.Count)
		fmt.Fprintf(&b, "%s_sum %d\n%s_count %d\n", name, snap.Sum, name, snap.Count)
	}
	w.Write([]byte(b.String()))
}

// serveTraces renders the retained rumor-lifecycle records as JSON.
func (s *Server) serveTraces(w http.ResponseWriter, _ *http.Request) {
	_, _, _, _, traces := s.snapshotRegistry()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if traces == nil {
		w.Write([]byte("[]\n"))
		return
	}
	recs := traces()
	type rec struct {
		Event string `json:"event"`
		Stage string `json:"stage"`
		Node  string `json:"node"`
		Hop   int    `json:"hop"`
		Round uint64 `json:"round"`
		Rsn   string `json:"reason,omitempty"`
		Index uint64 `json:"index"`
		Time  string `json:"time"`
	}
	out := make([]rec, 0, len(recs))
	for _, r := range recs {
		out = append(out, rec{
			Event: fmt.Sprintf("%s/%d", r.Origin, r.Seq),
			Stage: r.Stage.String(),
			Node:  r.Node,
			Hop:   r.Hop,
			Round: r.Round,
			Rsn:   r.Reason,
			Index: r.Index,
			Time:  r.Time.Format("2006-01-02T15:04:05.000000Z07:00"),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

package observe

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Server is the opt-in debug listener: it serves every registered
// instrument as expvar-style JSON on /debug/vars, as Prometheus text
// format on /metrics, the runtime profiles on /debug/pprof/, the
// retained rumor traces on /debug/gossip/traces, and the merged cluster
// health view on /debug/gossip/cluster. A Server is bound at
// construction and serves until Close.
//
// Registration is name-keyed; names should be Prometheus-compatible
// ([a-z0-9_]). Snapshot functions run on the scrape goroutine, so they
// must be safe to call concurrently with the instrumented code (the
// facades satisfy this by reading loop-serialized snapshots and atomic
// instruments).
type Server struct {
	ln  net.Listener
	srv *http.Server

	mu      sync.Mutex
	vars    map[string]func() any
	gauges  map[string]func() float64
	counts  map[string]func() uint64
	hists   map[string]func() HistogramSnapshot
	traces  func() []TraceRecord
	peers   func() []PeerSnapshot
	cluster func() any
}

// NewServer binds addr (host:port; ":0" picks a free port) and starts
// serving the debug endpoints.
func NewServer(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("observe: debug listener: %w", err)
	}
	s := &Server{
		ln:     ln,
		vars:   make(map[string]func() any),
		gauges: make(map[string]func() float64),
		counts: make(map[string]func() uint64),
		hists:  make(map[string]func() HistogramSnapshot),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/vars", s.serveVars)
	mux.HandleFunc("/metrics", s.serveMetrics)
	mux.HandleFunc("/debug/gossip/traces", s.serveTraces)
	mux.HandleFunc("/debug/gossip/cluster", s.serveCluster)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener. In-flight scrapes are abandoned.
func (s *Server) Close() error { return s.srv.Close() }

// PublishVar registers a JSON-marshalable snapshot under name on
// /debug/vars.
func (s *Server) PublishVar(name string, fn func() any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.vars[name] = fn
}

// PublishCounter registers a monotonic counter on /metrics (and
// /debug/vars).
func (s *Server) PublishCounter(name string, fn func() uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counts[name] = fn
}

// PublishGauge registers a gauge level on /metrics (and /debug/vars).
func (s *Server) PublishGauge(name string, fn func() float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gauges[name] = fn
}

// PublishHistogram registers a histogram on /metrics (and /debug/vars,
// as {count, sum, p50, p95, p99}).
func (s *Server) PublishHistogram(name string, fn func() HistogramSnapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hists[name] = fn
}

// PublishTraces registers the rumor-trace source served on
// /debug/gossip/traces.
func (s *Server) PublishTraces(fn func() []TraceRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.traces = fn
}

// PublishPeers registers the per-peer link stats source. Peers are
// rendered as labeled metric families on /metrics and as the
// "gossip_peers" array on /debug/vars; the snapshot must already be
// sorted by peer id (PeerTable.Snapshot is).
func (s *Server) PublishPeers(fn func() []PeerSnapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.peers = fn
}

// PublishCluster registers the merged cluster health view served as
// JSON on /debug/gossip/cluster. The snapshot function must return a
// JSON-marshalable value; nil deregisters (the endpoint serves []).
func (s *Server) PublishCluster(fn func() any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cluster = fn
}

// registry is a point-in-time copy of the Server's registrations.
type registry struct {
	vars    map[string]func() any
	counts  map[string]func() uint64
	gauges  map[string]func() float64
	hists   map[string]func() HistogramSnapshot
	traces  func() []TraceRecord
	peers   func() []PeerSnapshot
	cluster func() any
}

// snapshotRegistry copies the registration maps so scrapes never hold
// the registration lock while running snapshot functions.
func (s *Server) snapshotRegistry() registry {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := registry{
		vars:    make(map[string]func() any, len(s.vars)),
		counts:  make(map[string]func() uint64, len(s.counts)),
		gauges:  make(map[string]func() float64, len(s.gauges)),
		hists:   make(map[string]func() HistogramSnapshot, len(s.hists)),
		traces:  s.traces,
		peers:   s.peers,
		cluster: s.cluster,
	}
	for k, v := range s.vars {
		r.vars[k] = v
	}
	for k, v := range s.counts {
		r.counts[k] = v
	}
	for k, v := range s.gauges {
		r.gauges[k] = v
	}
	for k, v := range s.hists {
		r.hists[k] = v
	}
	return r
}

// serveVars renders every registered instrument as one JSON object, in
// the spirit of package expvar: counters and gauges as numbers,
// histograms as summary objects, vars as their marshaled snapshots,
// plus the standard "memstats" block.
func (s *Server) serveVars(w http.ResponseWriter, _ *http.Request) {
	reg := s.snapshotRegistry()
	out := make(map[string]any, len(reg.vars)+len(reg.counts)+len(reg.gauges)+len(reg.hists)+2)
	for name, fn := range reg.vars {
		out[name] = fn()
	}
	for name, fn := range reg.counts {
		out[name] = fn()
	}
	for name, fn := range reg.gauges {
		out[name] = fn()
	}
	for name, fn := range reg.hists {
		snap := fn()
		out[name] = histogramSummary(snap)
	}
	if reg.peers != nil {
		peers := reg.peers()
		rows := make([]map[string]any, 0, len(peers))
		for _, p := range peers {
			rows = append(rows, map[string]any{
				"peer":              p.Peer,
				"messages_sent":     p.MessagesSent,
				"bytes_sent":        p.BytesSent,
				"messages_received": p.MessagesReceived,
				"bytes_received":    p.BytesReceived,
				"fanout_sends":      p.FanoutSends,
				"drops":             p.Drops,
				"send_errors":       p.SendErrors,
				"rtt_micros":        histogramSummary(p.RTT),
			})
		}
		out["gossip_peers"] = rows
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	out["memstats"] = map[string]any{
		"Alloc":      ms.Alloc,
		"TotalAlloc": ms.TotalAlloc,
		"Sys":        ms.Sys,
		"NumGC":      ms.NumGC,
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}

// serveMetrics renders the Prometheus text exposition format. Every
// section iterates sorted names (and, for per-peer families, sorted
// peer ids), so two scrapes of an idle process produce byte-identical
// bodies and scrapes diff cleanly.
func (s *Server) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	reg := s.snapshotRegistry()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	for _, name := range sortedKeys(reg.counts) {
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", name, name, reg.counts[name]())
	}
	for _, name := range sortedKeys(reg.gauges) {
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %g\n", name, name, reg.gauges[name]())
	}
	for _, name := range sortedKeys(reg.hists) {
		fmt.Fprintf(&b, "# TYPE %s histogram\n", name)
		writeHistogram(&b, name, "", reg.hists[name]())
	}
	if reg.peers != nil {
		writePeerMetrics(&b, reg.peers())
	}
	w.Write([]byte(b.String()))
}

// writeHistogram renders one histogram family (cumulative le buckets,
// _sum, _count). labels, when non-empty, is an already-rendered label
// list without braces (`peer="a"`) applied to every sample; the le
// label is appended after it on bucket lines.
func writeHistogram(b *strings.Builder, name, labels string, snap HistogramSnapshot) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i, c := range snap.Buckets {
		if c == 0 {
			continue
		}
		cum += c
		fmt.Fprintf(b, "%s_bucket{%s%sle=\"%d\"} %d\n", name, labels, sep, BucketHigh(i)-1, cum)
	}
	fmt.Fprintf(b, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, snap.Count)
	if labels == "" {
		fmt.Fprintf(b, "%s_sum %d\n%s_count %d\n", name, snap.Sum, name, snap.Count)
	} else {
		fmt.Fprintf(b, "%s_sum{%s} %d\n%s_count{%s} %d\n", name, labels, snap.Sum, name, labels, snap.Count)
	}
}

// peerCounterFamilies maps each per-peer counter family, in exposition
// order, to its snapshot field.
var peerCounterFamilies = []struct {
	name string
	get  func(PeerSnapshot) uint64
}{
	{"gossip_peer_bytes_received_total", func(p PeerSnapshot) uint64 { return p.BytesReceived }},
	{"gossip_peer_bytes_sent_total", func(p PeerSnapshot) uint64 { return p.BytesSent }},
	{"gossip_peer_drops_total", func(p PeerSnapshot) uint64 { return p.Drops }},
	{"gossip_peer_fanout_sends_total", func(p PeerSnapshot) uint64 { return p.FanoutSends }},
	{"gossip_peer_messages_received_total", func(p PeerSnapshot) uint64 { return p.MessagesReceived }},
	{"gossip_peer_messages_sent_total", func(p PeerSnapshot) uint64 { return p.MessagesSent }},
	{"gossip_peer_send_errors_total", func(p PeerSnapshot) uint64 { return p.SendErrors }},
}

// writePeerMetrics renders the per-peer link families with a peer
// label. Families are emitted in fixed (sorted) order and peers arrive
// sorted from PeerTable.Snapshot, so the exposition is stable.
func writePeerMetrics(b *strings.Builder, peers []PeerSnapshot) {
	if len(peers) == 0 {
		return
	}
	for _, fam := range peerCounterFamilies {
		fmt.Fprintf(b, "# TYPE %s counter\n", fam.name)
		for _, p := range peers {
			// %q escapes backslash, quote and newline — exactly the
			// Prometheus label-value escapes.
			fmt.Fprintf(b, "%s{peer=%q} %d\n", fam.name, p.Peer, fam.get(p))
		}
	}
	fmt.Fprintf(b, "# TYPE gossip_peer_rtt_micros histogram\n")
	for _, p := range peers {
		writeHistogram(b, "gossip_peer_rtt_micros",
			fmt.Sprintf("peer=%q", p.Peer), p.RTT)
	}
}

// histogramSummary is the /debug/vars JSON rendering of a histogram.
func histogramSummary(snap HistogramSnapshot) map[string]any {
	return map[string]any{
		"count": snap.Count,
		"sum":   snap.Sum,
		"mean":  snap.Mean(),
		"p50":   snap.Quantile(0.50),
		"p95":   snap.Quantile(0.95),
		"p99":   snap.Quantile(0.99),
	}
}

// serveTraces renders the retained rumor-lifecycle records as JSON.
func (s *Server) serveTraces(w http.ResponseWriter, _ *http.Request) {
	reg := s.snapshotRegistry()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if reg.traces == nil {
		w.Write([]byte("[]\n"))
		return
	}
	recs := reg.traces()
	type rec struct {
		Event string `json:"event"`
		Stage string `json:"stage"`
		Node  string `json:"node"`
		From  string `json:"from,omitempty"`
		Hop   int    `json:"hop"`
		Round uint64 `json:"round"`
		Rsn   string `json:"reason,omitempty"`
		Index uint64 `json:"index"`
		Time  string `json:"time"`
	}
	out := make([]rec, 0, len(recs))
	for _, r := range recs {
		out = append(out, rec{
			Event: fmt.Sprintf("%s/%d", r.Origin, r.Seq),
			Stage: r.Stage.String(),
			Node:  r.Node,
			From:  r.From,
			Hop:   r.Hop,
			Round: r.Round,
			Rsn:   r.Reason,
			Index: r.Index,
			Time:  r.Time.Format("2006-01-02T15:04:05.000000Z07:00"),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}

// serveCluster renders the merged cluster health view as JSON. With no
// registered source (health digests disabled, or a facade with no
// cluster view) it serves an empty array so pollers can treat the
// endpoint uniformly.
func (s *Server) serveCluster(w http.ResponseWriter, _ *http.Request) {
	reg := s.snapshotRegistry()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if reg.cluster == nil {
		w.Write([]byte("[]\n"))
		return
	}
	v := reg.cluster()
	if v == nil {
		w.Write([]byte("[]\n"))
		return
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

package observe

import (
	"testing"
)

func TestRecorderSamplingDeterministic(t *testing.T) {
	r := NewRecorder(0.5, 16)
	for seq := uint64(0); seq < 100; seq++ {
		first := r.Sampled("origin", seq)
		for i := 0; i < 3; i++ {
			if r.Sampled("origin", seq) != first {
				t.Fatalf("sampling decision for seq %d is not deterministic", seq)
			}
		}
	}
}

func TestRecorderSampleRateExtremes(t *testing.T) {
	off := NewRecorder(0, 16)
	all := NewRecorder(1, 16)
	for seq := uint64(0); seq < 200; seq++ {
		if off.Sampled("n", seq) {
			t.Fatalf("rate-0 recorder sampled seq %d", seq)
		}
		if !all.Sampled("n", seq) {
			t.Fatalf("rate-1 recorder skipped seq %d", seq)
		}
	}
}

func TestRecorderSampleRateApproximate(t *testing.T) {
	r := NewRecorder(0.25, 16)
	hits := 0
	const n = 10000
	for seq := uint64(0); seq < n; seq++ {
		if r.Sampled("some-node", seq) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.20 || frac > 0.30 {
		t.Fatalf("rate-0.25 recorder sampled %.3f of rumors", frac)
	}
}

func TestRecorderPathReconstruction(t *testing.T) {
	r := NewRecorder(1, 64)
	// A rumor's life as three nodes see it, interleaved with noise
	// from another rumor.
	r.Trace(TraceEvent{Origin: "a", Seq: 7, Stage: StagePublish, Node: "a", Hop: 0, Round: 10})
	r.Trace(TraceEvent{Origin: "b", Seq: 1, Stage: StagePublish, Node: "b"})
	r.Trace(TraceEvent{Origin: "a", Seq: 7, Stage: StageFirstSend, Node: "a", Hop: 1, Round: 11})
	r.Trace(TraceEvent{Origin: "a", Seq: 7, Stage: StageReceive, Node: "c", Hop: 1, Round: 4})
	r.Trace(TraceEvent{Origin: "a", Seq: 7, Stage: StageDeliver, Node: "c", Hop: 1, Round: 4})
	r.Trace(TraceEvent{Origin: "a", Seq: 7, Stage: StageDrop, Node: "c", Hop: 9, Round: 13, Reason: "expired"})

	path := r.Path("a", 7)
	wantStages := []TraceStage{StagePublish, StageFirstSend, StageReceive, StageDeliver, StageDrop}
	if len(path) != len(wantStages) {
		t.Fatalf("path has %d records, want %d", len(path), len(wantStages))
	}
	for i, rec := range path {
		if rec.Stage != wantStages[i] {
			t.Fatalf("path[%d].Stage = %v, want %v", i, rec.Stage, wantStages[i])
		}
		if i > 0 && rec.Index <= path[i-1].Index {
			t.Fatalf("path indexes not increasing at %d", i)
		}
	}
	if path[1].Hop != 1 || path[4].Reason != "expired" {
		t.Fatalf("path lost transition detail: %+v", path)
	}
}

func TestRecorderRingOverwrite(t *testing.T) {
	r := NewRecorder(1, 8)
	for seq := uint64(0); seq < 20; seq++ {
		r.Trace(TraceEvent{Origin: "x", Seq: seq, Stage: StagePublish, Node: "x"})
	}
	recs := r.Records()
	if len(recs) != 8 {
		t.Fatalf("ring holds %d records, want capacity 8", len(recs))
	}
	for i, rec := range recs {
		if want := uint64(12 + i); rec.Seq != want {
			t.Fatalf("ring[%d].Seq = %d, want %d (oldest-first, newest retained)", i, rec.Seq, want)
		}
	}
}

func TestTraceStageStrings(t *testing.T) {
	for stage, want := range map[TraceStage]string{
		StagePublish:   "publish",
		StageFirstSend: "first-send",
		StageReceive:   "receive",
		StageDeliver:   "deliver",
		StageDrop:      "drop",
		TraceStage(99): "unknown",
	} {
		if got := stage.String(); got != want {
			t.Fatalf("TraceStage(%d).String() = %q, want %q", stage, got, want)
		}
	}
}

package observe

import (
	"math"
	"math/rand/v2"
	"runtime"
	"sync"
	"testing"
)

func TestHistogramZeroObservations(t *testing.T) {
	var h Histogram
	snap := h.Snapshot()
	if snap.Count != 0 || snap.Sum != 0 {
		t.Fatalf("empty histogram reports count=%d sum=%d", snap.Count, snap.Sum)
	}
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if v := snap.Quantile(q); v != 0 {
			t.Fatalf("empty histogram Quantile(%v) = %v, want 0", q, v)
		}
	}
	if m := snap.Mean(); m != 0 {
		t.Fatalf("empty histogram Mean() = %v, want 0", m)
	}
}

func TestHistogramBucketBounds(t *testing.T) {
	// Every value must land in the bucket whose [low, high) range
	// contains it; the extremes must saturate, not panic or wrap.
	values := []uint64{0, 1, 2, 3, 4, 7, 8, 1023, 1024, 1 << 40, 1 << 63, math.MaxUint64}
	for _, v := range values {
		i := bucketIndex(v)
		if i < 0 || i >= NumBuckets {
			t.Fatalf("value %d maps to out-of-range bucket %d", v, i)
		}
		if v < BucketLow(i) {
			t.Fatalf("value %d below bucket %d low bound %d", v, i, BucketLow(i))
		}
		if i < 64 && v >= BucketHigh(i) {
			t.Fatalf("value %d at/above bucket %d high bound %d", v, i, BucketHigh(i))
		}
	}
}

func TestHistogramSaturatingOverflow(t *testing.T) {
	var h Histogram
	h.Observe(math.MaxUint64)
	h.Observe(math.MaxUint64)
	h.Observe(1 << 63)
	snap := h.Snapshot()
	if snap.Count != 3 {
		t.Fatalf("count = %d, want 3", snap.Count)
	}
	if got := snap.Buckets[NumBuckets-1]; got != 3 {
		t.Fatalf("top bucket holds %d, want all 3 saturated observations", got)
	}
	// Quantiles of the saturating bucket report its lower bound rather
	// than interpolating into a fictional upper bound.
	if q := snap.Quantile(0.99); q != float64(uint64(1)<<63) {
		t.Fatalf("saturated Quantile(0.99) = %g, want 2^63", q)
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Observe(uint64(i))
	}
	snap := h.Snapshot()
	if snap.Count != 1000 || snap.Sum != 999*1000/2 {
		t.Fatalf("count=%d sum=%d", snap.Count, snap.Sum)
	}
	// Power-of-two buckets bound the estimate to within 2x of truth.
	for _, tc := range []struct{ q, want float64 }{{0.5, 499}, {0.95, 949}, {0.99, 989}} {
		got := snap.Quantile(tc.q)
		if got < tc.want/2 || got > tc.want*2 {
			t.Fatalf("Quantile(%v) = %g, want within 2x of %g", tc.q, got, tc.want)
		}
	}
}

// TestHistogramConcurrentObserve model-checks the concurrent histogram
// against a naive single-threaded reference: GOMAXPROCS goroutines
// hammer Observe with deterministic per-goroutine streams, and the
// final snapshot must match the reference built from the same streams.
func TestHistogramConcurrentObserve(t *testing.T) {
	workers := runtime.GOMAXPROCS(0)
	const perWorker = 20000
	var h Histogram

	type naive struct {
		count, sum uint64
		buckets    [NumBuckets]uint64
	}
	refs := make([]naive, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w)+1, 42))
			for i := 0; i < perWorker; i++ {
				// Mix magnitudes so many buckets are exercised.
				v := rng.Uint64() >> (rng.UintN(64))
				h.Observe(v)
				refs[w].count++
				refs[w].sum += v
				refs[w].buckets[bucketIndex(v)]++
			}
		}(w)
	}
	wg.Wait()

	var want naive
	for _, r := range refs {
		want.count += r.count
		want.sum += r.sum
		for i := range r.buckets {
			want.buckets[i] += r.buckets[i]
		}
	}
	snap := h.Snapshot()
	if snap.Count != want.count || snap.Sum != want.sum {
		t.Fatalf("concurrent result count=%d sum=%d, reference count=%d sum=%d",
			snap.Count, snap.Sum, want.count, want.sum)
	}
	if snap.Buckets != want.buckets {
		t.Fatalf("concurrent bucket counts diverge from naive reference")
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.Observe(uint64(i))
		b.Observe(uint64(i * 1000))
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	merged := sa
	merged.Merge(sb)
	if merged.Count != sa.Count+sb.Count {
		t.Fatalf("merged count %d != %d+%d", merged.Count, sa.Count, sb.Count)
	}
	if merged.Sum != sa.Sum+sb.Sum {
		t.Fatalf("merged sum %d != %d+%d", merged.Sum, sa.Sum, sb.Sum)
	}
	var buckets uint64
	for _, c := range merged.Buckets {
		buckets += c
	}
	if buckets != merged.Count {
		t.Fatalf("merged buckets sum to %d, count is %d", buckets, merged.Count)
	}
}

func TestHistogramObserveAllocFree(t *testing.T) {
	var h Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(12345)
	})
	if allocs != 0 {
		t.Fatalf("Histogram.Observe allocates %v times, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(1000, func() {
		h.ObserveInt(-5)
	})
	if allocs != 0 {
		t.Fatalf("Histogram.ObserveInt allocates %v times, want 0", allocs)
	}
}

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	if g.Load() != 0 {
		t.Fatalf("zero gauge reads %v", g.Load())
	}
	g.Set(3.25)
	if got := g.Load(); got != 3.25 {
		t.Fatalf("gauge = %v, want 3.25", got)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
}

package observe

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func startTestServer(t *testing.T) *Server {
	t.Helper()
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestServerVarsJSON(t *testing.T) {
	s := startTestServer(t)
	s.PublishCounter("gossip_delivered_total", func() uint64 { return 17 })
	s.PublishGauge("gossip_allowed_rate", func() float64 { return 2.5 })
	var h Histogram
	for i := 0; i < 32; i++ {
		h.Observe(uint64(i))
	}
	s.PublishHistogram("gossip_delivery_hops", h.Snapshot)
	s.PublishVar("gossip_stats", func() any { return map[string]int{"nodes": 3} })

	body := get(t, "http://"+s.Addr()+"/debug/vars")
	var out map[string]any
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("vars output is not JSON: %v\n%s", err, body)
	}
	if out["gossip_delivered_total"] != float64(17) {
		t.Fatalf("counter missing or wrong: %v", out["gossip_delivered_total"])
	}
	if out["gossip_allowed_rate"] != 2.5 {
		t.Fatalf("gauge missing or wrong: %v", out["gossip_allowed_rate"])
	}
	hist, ok := out["gossip_delivery_hops"].(map[string]any)
	if !ok || hist["count"] != float64(32) {
		t.Fatalf("histogram summary missing: %v", out["gossip_delivery_hops"])
	}
	if _, ok := hist["p99"]; !ok {
		t.Fatalf("histogram summary lacks p99: %v", hist)
	}
	if _, ok := out["memstats"]; !ok {
		t.Fatal("memstats block missing from /debug/vars")
	}
}

func TestServerPrometheusText(t *testing.T) {
	s := startTestServer(t)
	s.PublishCounter("gossip_messages_sent_total", func() uint64 { return 5 })
	s.PublishGauge("gossip_allowed_rate_min", func() float64 { return 1.25 })
	var h Histogram
	h.Observe(3)
	h.Observe(300)
	s.PublishHistogram("gossip_drop_age", h.Snapshot)

	body := get(t, "http://"+s.Addr()+"/metrics")
	for _, want := range []string{
		"# TYPE gossip_messages_sent_total counter",
		"gossip_messages_sent_total 5",
		"# TYPE gossip_allowed_rate_min gauge",
		"gossip_allowed_rate_min 1.25",
		"# TYPE gossip_drop_age histogram",
		`gossip_drop_age_bucket{le="+Inf"} 2`,
		"gossip_drop_age_sum 303",
		"gossip_drop_age_count 2",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics output missing %q:\n%s", want, body)
		}
	}
	// Cumulative bucket counts: the +Inf bucket equals the count and
	// every listed bucket is non-decreasing.
	if !strings.Contains(body, "gossip_drop_age_bucket{le=") {
		t.Fatalf("no explicit buckets rendered:\n%s", body)
	}
}

func TestServerTracesEndpoint(t *testing.T) {
	s := startTestServer(t)
	body := get(t, "http://"+s.Addr()+"/debug/gossip/traces")
	if strings.TrimSpace(body) != "[]" {
		t.Fatalf("traces endpoint without recorder should return [], got %q", body)
	}

	r := NewRecorder(1, 16)
	r.Trace(TraceEvent{Origin: "a", Seq: 1, Stage: StagePublish, Node: "a"})
	r.Trace(TraceEvent{Origin: "a", Seq: 1, Stage: StageDeliver, Node: "b", Hop: 2})
	s.PublishTraces(r.Records)

	body = get(t, "http://"+s.Addr()+"/debug/gossip/traces")
	var recs []map[string]any
	if err := json.Unmarshal([]byte(body), &recs); err != nil {
		t.Fatalf("traces output is not JSON: %v\n%s", err, body)
	}
	if len(recs) != 2 {
		t.Fatalf("traces endpoint returned %d records, want 2", len(recs))
	}
	if recs[0]["stage"] != "publish" || recs[1]["stage"] != "deliver" {
		t.Fatalf("trace stages wrong: %v", recs)
	}
	if recs[1]["hop"] != float64(2) || recs[1]["event"] != "a/1" {
		t.Fatalf("trace detail wrong: %v", recs[1])
	}
}

// getWithType fetches url and returns (body, Content-Type).
func getWithType(t *testing.T, url string) (string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp.Header.Get("Content-Type")
}

// TestServerContentTypes: every observability endpoint declares its
// media type — Prometheus text exposition v0.0.4 on /metrics, JSON
// everywhere else.
func TestServerContentTypes(t *testing.T) {
	s := startTestServer(t)
	s.PublishCounter("gossip_delivered_total", func() uint64 { return 1 })
	for url, want := range map[string]string{
		"/metrics":              "text/plain; version=0.0.4; charset=utf-8",
		"/debug/vars":           "application/json; charset=utf-8",
		"/debug/gossip/traces":  "application/json; charset=utf-8",
		"/debug/gossip/cluster": "application/json; charset=utf-8",
	} {
		if _, ct := getWithType(t, "http://"+s.Addr()+url); ct != want {
			t.Fatalf("%s Content-Type = %q, want %q", url, ct, want)
		}
	}
}

// TestServerMetricsStableOrder: /metrics iterates sorted names and
// sorted peer ids, so two scrapes of an idle process are byte-identical
// and families appear in lexicographic order regardless of
// registration order.
func TestServerMetricsStableOrder(t *testing.T) {
	s := startTestServer(t)
	// Register intentionally out of order.
	s.PublishCounter("gossip_z_total", func() uint64 { return 3 })
	s.PublishCounter("gossip_a_total", func() uint64 { return 1 })
	s.PublishCounter("gossip_m_total", func() uint64 { return 2 })
	pt := NewPeerTable(8)
	pt.Get("zeta").MessagesSent.Inc()
	pt.Get("alpha").MessagesSent.Inc()
	s.PublishPeers(pt.Snapshot)

	first := get(t, "http://"+s.Addr()+"/metrics")
	second := get(t, "http://"+s.Addr()+"/metrics")
	if first != second {
		t.Fatalf("idle scrapes differ:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	for _, pair := range [][2]string{
		{"gossip_a_total", "gossip_m_total"},
		{"gossip_m_total", "gossip_z_total"},
		{`gossip_peer_messages_sent_total{peer="alpha"}`, `gossip_peer_messages_sent_total{peer="zeta"}`},
	} {
		i, j := strings.Index(first, pair[0]), strings.Index(first, pair[1])
		if i < 0 || j < 0 || i > j {
			t.Fatalf("%q must precede %q in /metrics:\n%s", pair[0], pair[1], first)
		}
	}
}

// TestServerPeerMetrics: the per-peer families render with peer labels
// on /metrics and as the gossip_peers array on /debug/vars.
func TestServerPeerMetrics(t *testing.T) {
	s := startTestServer(t)
	pt := NewPeerTable(8)
	ps := pt.Get("b")
	ps.MessagesSent.Add(4)
	ps.BytesSent.Add(512)
	ps.RTTMicros.ObserveInt(1500)
	s.PublishPeers(pt.Snapshot)

	metrics := get(t, "http://"+s.Addr()+"/metrics")
	for _, want := range []string{
		"# TYPE gossip_peer_messages_sent_total counter",
		`gossip_peer_messages_sent_total{peer="b"} 4`,
		`gossip_peer_bytes_sent_total{peer="b"} 512`,
		"# TYPE gossip_peer_rtt_micros histogram",
		`gossip_peer_rtt_micros_count{peer="b"} 1`,
		`gossip_peer_rtt_micros_sum{peer="b"} 1500`,
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	body := get(t, "http://"+s.Addr()+"/debug/vars")
	var out map[string]any
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	rows, ok := out["gossip_peers"].([]any)
	if !ok || len(rows) != 1 {
		t.Fatalf("gossip_peers = %v", out["gossip_peers"])
	}
	row := rows[0].(map[string]any)
	if row["peer"] != "b" || row["messages_sent"] != float64(4) {
		t.Fatalf("peer row = %v", row)
	}
	if rtt, ok := row["rtt_micros"].(map[string]any); !ok || rtt["count"] != float64(1) {
		t.Fatalf("peer rtt summary = %v", row["rtt_micros"])
	}
}

// TestServerClusterEndpoint: /debug/gossip/cluster serves [] without a
// source and the registered view's JSON with one.
func TestServerClusterEndpoint(t *testing.T) {
	s := startTestServer(t)
	body := get(t, "http://"+s.Addr()+"/debug/gossip/cluster")
	if strings.TrimSpace(body) != "[]" {
		t.Fatalf("cluster endpoint without source should return [], got %q", body)
	}

	type member struct {
		Node  string `json:"node"`
		Round uint64 `json:"round"`
	}
	s.PublishCluster(func() any { return []member{{Node: "a", Round: 7}, {Node: "b", Round: 3}} })
	body = get(t, "http://"+s.Addr()+"/debug/gossip/cluster")
	var view []member
	if err := json.Unmarshal([]byte(body), &view); err != nil {
		t.Fatalf("cluster output is not JSON: %v\n%s", err, body)
	}
	if len(view) != 2 || view[0].Node != "a" || view[0].Round != 7 {
		t.Fatalf("cluster view = %v", view)
	}

	// A source that returns nil degrades back to [].
	s.PublishCluster(func() any { return nil })
	body = get(t, "http://"+s.Addr()+"/debug/gossip/cluster")
	if strings.TrimSpace(body) != "[]" {
		t.Fatalf("nil view should serve [], got %q", body)
	}
}

func TestServerPprofEndpoint(t *testing.T) {
	s := startTestServer(t)
	body := get(t, "http://"+s.Addr()+"/debug/pprof/cmdline")
	if len(body) == 0 {
		t.Fatal("pprof cmdline endpoint returned nothing")
	}
	index := get(t, "http://"+s.Addr()+"/debug/pprof/")
	if !strings.Contains(index, "goroutine") {
		t.Fatalf("pprof index does not list profiles:\n%s", index)
	}
}

package observe

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func startTestServer(t *testing.T) *Server {
	t.Helper()
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestServerVarsJSON(t *testing.T) {
	s := startTestServer(t)
	s.PublishCounter("gossip_delivered_total", func() uint64 { return 17 })
	s.PublishGauge("gossip_allowed_rate", func() float64 { return 2.5 })
	var h Histogram
	for i := 0; i < 32; i++ {
		h.Observe(uint64(i))
	}
	s.PublishHistogram("gossip_delivery_hops", h.Snapshot)
	s.PublishVar("gossip_stats", func() any { return map[string]int{"nodes": 3} })

	body := get(t, "http://"+s.Addr()+"/debug/vars")
	var out map[string]any
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("vars output is not JSON: %v\n%s", err, body)
	}
	if out["gossip_delivered_total"] != float64(17) {
		t.Fatalf("counter missing or wrong: %v", out["gossip_delivered_total"])
	}
	if out["gossip_allowed_rate"] != 2.5 {
		t.Fatalf("gauge missing or wrong: %v", out["gossip_allowed_rate"])
	}
	hist, ok := out["gossip_delivery_hops"].(map[string]any)
	if !ok || hist["count"] != float64(32) {
		t.Fatalf("histogram summary missing: %v", out["gossip_delivery_hops"])
	}
	if _, ok := hist["p99"]; !ok {
		t.Fatalf("histogram summary lacks p99: %v", hist)
	}
	if _, ok := out["memstats"]; !ok {
		t.Fatal("memstats block missing from /debug/vars")
	}
}

func TestServerPrometheusText(t *testing.T) {
	s := startTestServer(t)
	s.PublishCounter("gossip_messages_sent_total", func() uint64 { return 5 })
	s.PublishGauge("gossip_allowed_rate_min", func() float64 { return 1.25 })
	var h Histogram
	h.Observe(3)
	h.Observe(300)
	s.PublishHistogram("gossip_drop_age", h.Snapshot)

	body := get(t, "http://"+s.Addr()+"/metrics")
	for _, want := range []string{
		"# TYPE gossip_messages_sent_total counter",
		"gossip_messages_sent_total 5",
		"# TYPE gossip_allowed_rate_min gauge",
		"gossip_allowed_rate_min 1.25",
		"# TYPE gossip_drop_age histogram",
		`gossip_drop_age_bucket{le="+Inf"} 2`,
		"gossip_drop_age_sum 303",
		"gossip_drop_age_count 2",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics output missing %q:\n%s", want, body)
		}
	}
	// Cumulative bucket counts: the +Inf bucket equals the count and
	// every listed bucket is non-decreasing.
	if !strings.Contains(body, "gossip_drop_age_bucket{le=") {
		t.Fatalf("no explicit buckets rendered:\n%s", body)
	}
}

func TestServerTracesEndpoint(t *testing.T) {
	s := startTestServer(t)
	body := get(t, "http://"+s.Addr()+"/debug/gossip/traces")
	if strings.TrimSpace(body) != "[]" {
		t.Fatalf("traces endpoint without recorder should return [], got %q", body)
	}

	r := NewRecorder(1, 16)
	r.Trace(TraceEvent{Origin: "a", Seq: 1, Stage: StagePublish, Node: "a"})
	r.Trace(TraceEvent{Origin: "a", Seq: 1, Stage: StageDeliver, Node: "b", Hop: 2})
	s.PublishTraces(r.Records)

	body = get(t, "http://"+s.Addr()+"/debug/gossip/traces")
	var recs []map[string]any
	if err := json.Unmarshal([]byte(body), &recs); err != nil {
		t.Fatalf("traces output is not JSON: %v\n%s", err, body)
	}
	if len(recs) != 2 {
		t.Fatalf("traces endpoint returned %d records, want 2", len(recs))
	}
	if recs[0]["stage"] != "publish" || recs[1]["stage"] != "deliver" {
		t.Fatalf("trace stages wrong: %v", recs)
	}
	if recs[1]["hop"] != float64(2) || recs[1]["event"] != "a/1" {
		t.Fatalf("trace detail wrong: %v", recs[1])
	}
}

func TestServerPprofEndpoint(t *testing.T) {
	s := startTestServer(t)
	body := get(t, "http://"+s.Addr()+"/debug/pprof/cmdline")
	if len(body) == 0 {
		t.Fatal("pprof cmdline endpoint returned nothing")
	}
	index := get(t, "http://"+s.Addr()+"/debug/pprof/")
	if !strings.Contains(index, "goroutine") {
		t.Fatalf("pprof index does not list profiles:\n%s", index)
	}
}

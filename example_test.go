package adaptivegossip_test

import (
	"context"
	"fmt"
	"log"
	"time"

	"adaptivegossip"
)

// exampleConfig is a demo-friendly protocol configuration: fast rounds
// so the examples finish in milliseconds.
func exampleConfig() adaptivegossip.Config {
	cfg := adaptivegossip.DefaultConfig()
	cfg.Period = 20 * time.Millisecond
	cfg.BufferCapacity = 40
	return cfg
}

// ExampleNewCluster broadcasts one message through an in-process
// cluster and consumes the delivery stream until every member has it.
func ExampleNewCluster() {
	cluster, err := adaptivegossip.NewCluster(4, exampleConfig(),
		adaptivegossip.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	ctx := context.Background()
	events := cluster.Events(ctx)
	if err := cluster.Start(ctx); err != nil {
		log.Fatal(err)
	}

	cluster.Publish(0, []byte("hello group"))
	reached := map[adaptivegossip.NodeID]bool{}
	for d := range events {
		reached[d.Node] = true
		if len(reached) == cluster.Len() {
			break
		}
	}
	fmt.Printf("delivered to %d nodes\n", len(reached))
	// Output: delivered to 4 nodes
}

// ExampleNewNode wires two UDP nodes on loopback by exchanging bound
// addresses, then broadcasts across the real wire.
func ExampleNewNode() {
	cfg := exampleConfig()
	alpha, err := adaptivegossip.NewNode("alpha", cfg, adaptivegossip.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	defer alpha.Close()
	beta, err := adaptivegossip.NewNode("beta", cfg, adaptivegossip.WithSeed(2))
	if err != nil {
		log.Fatal(err)
	}
	defer beta.Close()

	// Address books both ways (or pass WithPeers up front).
	if err := alpha.AddPeer("beta", beta.Addr()); err != nil {
		log.Fatal(err)
	}
	if err := beta.AddPeer("alpha", alpha.Addr()); err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	events := beta.Events(ctx)
	if err := alpha.Start(ctx); err != nil {
		log.Fatal(err)
	}
	if err := beta.Start(ctx); err != nil {
		log.Fatal(err)
	}

	alpha.Publish([]byte("over the wire"))
	d := <-events
	fmt.Printf("%s received %q\n", d.Node, d.Event.Payload)
	// Output: beta received "over the wire"
}

// ExampleNewPubSub runs a topic-based group: every peer subscribes to
// a topic, one publishes, and the delivery stream reports the topic
// with each delivery.
func ExampleNewPubSub() {
	group, err := adaptivegossip.NewPubSub(3, 30, exampleConfig(),
		adaptivegossip.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	defer group.Close()
	ctx := context.Background()
	events := group.Events(ctx)
	if err := group.Start(ctx); err != nil {
		log.Fatal(err)
	}

	for i := 0; i < group.Len(); i++ {
		if err := group.Subscribe(i, "market-data"); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := group.Publish(0, "market-data", []byte("tick")); err != nil {
		log.Fatal(err)
	}

	reached := map[adaptivegossip.NodeID]bool{}
	var topic adaptivegossip.Topic
	for d := range events {
		topic = d.Topic
		reached[d.Node] = true
		if len(reached) == group.Len() {
			break
		}
	}
	fmt.Printf("topic %q delivered to %d peers\n", topic, len(reached))
	// Output: topic "market-data" delivered to 3 peers
}

// ExampleNewMemTransport plugs the in-memory fabric in explicitly —
// with loss injection, forcing the anti-entropy subsystem to repair
// the gaps.
func ExampleNewMemTransport() {
	fabric, err := adaptivegossip.NewMemTransport(
		adaptivegossip.WithTransportSeed(7),
		adaptivegossip.WithLoss(0.2),
		adaptivegossip.WithLatency(0, time.Millisecond),
	)
	if err != nil {
		log.Fatal(err)
	}
	cfg := exampleConfig()
	cfg.Recovery.Enabled = true
	cluster, err := adaptivegossip.NewCluster(4, cfg,
		adaptivegossip.WithSeed(7),
		adaptivegossip.WithTransport(fabric)) // the cluster now owns it
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	ctx := context.Background()
	events := cluster.Events(ctx)
	if err := cluster.Start(ctx); err != nil {
		log.Fatal(err)
	}

	cluster.Publish(0, []byte("survives loss"))
	reached := map[adaptivegossip.NodeID]bool{}
	for d := range events {
		reached[d.Node] = true
		if len(reached) == cluster.Len() {
			break
		}
	}
	fmt.Printf("delivered to %d nodes despite 20%% loss\n", len(reached))
	// Output: delivered to 4 nodes despite 20% loss
}

// ExampleNewUDPTransport binds a production-style listen address
// explicitly and hands the fabric to a node.
func ExampleNewUDPTransport() {
	fabric, err := adaptivegossip.NewUDPTransport(
		adaptivegossip.WithBind("127.0.0.1:0"), // a real deployment pins host:port
	)
	if err != nil {
		log.Fatal(err)
	}
	node, err := adaptivegossip.NewNode("host-1", exampleConfig(),
		adaptivegossip.WithTransport(fabric), // the node now owns it
		adaptivegossip.WithPeers(map[string]string{"host-2": "127.0.0.1:19746"}),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()
	fmt.Printf("bound=%v peers=%d\n", node.Addr() != "", len(node.Members())-1)
	// Output: bound=true peers=1
}

// ExampleSimulate reruns a small deterministic discrete-event
// experiment — the harness behind the paper's figures.
func ExampleSimulate() {
	cfg := adaptivegossip.DefaultSimConfig()
	cfg.N = 16
	cfg.Fanout = 3
	cfg.Period = time.Second
	cfg.Buffer = 25
	cfg.OfferedRate = 5
	cfg.Warmup = 20 * time.Second
	cfg.Duration = 60 * time.Second
	res, err := adaptivegossip.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("healthy=%v\n", res.Summary.MeanReceiversPct > 95)
	// Output: healthy=true
}

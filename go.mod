module adaptivegossip

go 1.24

package adaptivegossip

import (
	"adaptivegossip/internal/observe"
)

// groupObservability bundles the instrumentation state every facade
// owns: the alloc-free histogram blocks shared by the group's members
// (hop counts, drop ages, round sizes, runner latencies), the per-peer
// link telemetry table, the optional sampling trace recorder and the
// optional debug HTTP listener. One bundle serves the whole group —
// per-member observations pool.
type groupObservability struct {
	node   *observe.NodeMetrics
	runner *observe.RunnerMetrics
	peers  *observe.PeerTable
	rec    *observe.Recorder // nil unless TraceSampleRate > 0
	srv    *observe.Server   // nil unless DebugAddr set
}

// linkSetter is implemented by endpoints that can attribute their
// traffic to a per-peer telemetry table (both built-in fabrics). The
// install is an atomic pointer store on the endpoint, so facades may
// attach the table after the endpoint exists, even mid-traffic.
type linkSetter interface{ SetLinks(*observe.PeerTable) }

// newGroupObservability builds the instrument blocks from cfg. The
// debug listener is bound separately by bindServer once the facade is
// fully constructed — a scrape must never observe a half-built group.
func newGroupObservability(cfg ObservabilityConfig) *groupObservability {
	g := &groupObservability{
		node:   &observe.NodeMetrics{},
		runner: &observe.RunnerMetrics{},
		peers:  observe.NewPeerTable(observe.DefaultPeerTableCapacity),
	}
	if cfg.TraceSampleRate > 0 {
		g.rec = observe.NewRecorder(cfg.TraceSampleRate, cfg.TraceBufferSize)
	}
	return g
}

// attachLinks installs the group's peer table on a member endpoint (a
// no-op for custom transports without the telemetry seam).
func (g *groupObservability) attachLinks(ep Endpoint) {
	if ls, ok := ep.(linkSetter); ok {
		ls.SetLinks(g.peers)
	}
}

// bindServer binds the debug HTTP listener (no-op when addr is empty)
// and registers every instrument. stats is the group's unified
// snapshot and cluster the group's converged health view; both run on
// the scrape goroutine and must be safe to call concurrently with the
// group (every facade's Stats and ClusterHealth are). Call it as the
// last construction step.
func (g *groupObservability) bindServer(addr string, stats func() Stats, cluster func() []MemberHealth) error {
	if addr == "" {
		return nil
	}
	srv, err := observe.NewServer(addr)
	if err != nil {
		return err
	}
	g.srv = srv

	srv.PublishVar("gossip_stats", func() any { return stats() })
	counter := func(name string, get func(Stats) uint64) {
		srv.PublishCounter(name, func() uint64 { return get(stats()) })
	}
	counter("gossip_published_total", func(s Stats) uint64 { return s.Published })
	counter("gossip_delivered_total", func(s Stats) uint64 { return s.Delivered })
	counter("gossip_dropped_capacity_total", func(s Stats) uint64 { return s.DroppedCapacity })
	counter("gossip_dropped_expired_total", func(s Stats) uint64 { return s.DroppedExpired })
	counter("gossip_messages_sent_total", func(s Stats) uint64 { return s.MessagesSent })
	counter("gossip_events_recovered_total", func(s Stats) uint64 { return s.EventsRecovered })
	counter("gossip_probes_sent_total", func(s Stats) uint64 { return s.ProbesSent })
	counter("gossip_confirms_total", func(s Stats) uint64 { return s.Confirms })
	counter("gossip_stream_dropped_total", func(s Stats) uint64 { return s.StreamDropped })
	counter("gossip_recv_queue_drops_total", func(s Stats) uint64 { return s.RecvQueueDrops })
	counter("gossip_wire_sent_total", func(s Stats) uint64 { return s.Wire.Sent })
	counter("gossip_wire_sent_bytes_total", func(s Stats) uint64 { return s.Wire.SentBytes })
	counter("gossip_wire_received_total", func(s Stats) uint64 { return s.Wire.Received })
	counter("gossip_wire_recv_bytes_total", func(s Stats) uint64 { return s.Wire.RecvBytes })
	counter("gossip_wire_read_errors_total", func(s Stats) uint64 { return s.Wire.ReadErrors })
	counter("gossip_wire_split_chunks_total", func(s Stats) uint64 { return s.Wire.SplitChunks })
	counter("gossip_wire_precompression_bytes_total", func(s Stats) uint64 { return s.Wire.PreCompressionBytes })
	counter("gossip_wire_postcompression_bytes_total", func(s Stats) uint64 { return s.Wire.PostCompressionBytes })
	counter("gossip_health_digests_sent_total", func(s Stats) uint64 { return s.HealthDigestsSent })
	counter("gossip_health_digests_received_total", func(s Stats) uint64 { return s.HealthDigestsReceived })
	counter("gossip_health_digests_merged_total", func(s Stats) uint64 { return s.HealthDigestsMerged })

	srv.PublishGauge("gossip_nodes", func() float64 { return float64(stats().Nodes) })
	srv.PublishGauge("gossip_allowed_rate_min", func() float64 { return stats().MinAllowedRate })
	srv.PublishGauge("gossip_allowed_rate_max", func() float64 { return stats().MaxAllowedRate })
	srv.PublishGauge("gossip_allowed_rate_sum", func() float64 { return stats().SumAllowedRate })

	srv.PublishHistogram("gossip_deliver_hops", g.node.DeliverHops.Snapshot)
	srv.PublishHistogram("gossip_drop_age", g.node.DropAge.Snapshot)
	srv.PublishHistogram("gossip_round_events", g.node.RoundEvents.Snapshot)
	srv.PublishHistogram("gossip_tick_nanos", g.runner.TickNanos.Snapshot)
	srv.PublishHistogram("gossip_receive_nanos", g.runner.ReceiveNanos.Snapshot)

	srv.PublishPeers(g.peers.Snapshot)
	if cluster != nil {
		srv.PublishCluster(func() any { return cluster() })
	}
	if g.rec != nil {
		srv.PublishTraces(g.rec.Records)
	}
	return nil
}

// tracer returns the recorder as a nil-free Tracer interface value:
// plain nil when tracing is off, so the protocol hot path sees a nil
// interface (its zero-overhead branch), never a typed nil pointer.
func (g *groupObservability) tracer() observe.Tracer {
	if g.rec == nil {
		return nil
	}
	return g.rec
}

// debugAddr reports the bound debug listener address ("" when off).
func (g *groupObservability) debugAddr() string {
	if g.srv == nil {
		return ""
	}
	return g.srv.Addr()
}

// close stops the debug listener, if any.
func (g *groupObservability) close() {
	if g.srv != nil {
		g.srv.Close()
	}
}

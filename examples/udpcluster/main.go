// UDP cluster: the deployment shape of the paper's prototype — one
// process per workstation, gossip over real datagrams. This demo runs
// eight nodes on loopback sockets inside one process, broadcasts from
// two of them, and prints delivery and wire statistics.
//
// With -loss, every node drops that fraction of its outgoing datagrams
// — a lossy LAN in miniature. The anti-entropy recovery subsystem
// (enabled by default here) pulls the missing events back, keeping the
// delivery ratio near 1.0 where plain push gossip would fall short.
//
// With -churn, the demo kills one member node every interval and
// restarts it (same identity, same port) after a few rounds — live
// churn over real UDP. The SWIM-style failure detector (enabled by
// default with -churn) suspects and confirms the dead member, evicts
// it from every survivor's gossip targets, and re-admits it when it
// comes back; the demo prints each transition as it happens.
//
// Run with:
//
//	go run ./examples/udpcluster                  # clean network
//	go run ./examples/udpcluster -loss 0.25       # 25% datagram loss
//	go run ./examples/udpcluster -loss 0.25 -recovery=false
//	go run ./examples/udpcluster -churn 500ms     # kill/restart cycle
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"adaptivegossip"
)

const nodes = 8

func main() {
	loss := flag.Float64("loss", 0, "iid outgoing-datagram loss probability in [0,1]")
	recovery := flag.Bool("recovery", true, "enable digest-based anti-entropy recovery")
	churn := flag.Duration("churn", 0, "kill and restart one member this often (0 disables churn)")
	debug := flag.String("debug", "", "bind host-0's debug HTTP listener (/debug/vars, /metrics, pprof) on this address (empty = off)")
	flag.Parse()
	if err := run(*loss, *recovery, *churn, *debug); err != nil {
		log.SetFlags(0)
		log.Fatal(err)
	}
}

// nodeConfig is the shared protocol configuration: a deliberately
// skinny push (fanout 1, 3-round lifetime) so injected loss actually
// starves receivers, plus failure detection when churn is on.
func nodeConfig(recovery, detect bool) adaptivegossip.Config {
	cfg := adaptivegossip.DefaultConfig()
	cfg.Period = 50 * time.Millisecond
	cfg.BufferCapacity = 60
	cfg.Fanout = 1
	cfg.MaxAge = 3
	cfg.Adaptation.InitialRate = 40 // admit the demo's publish burst
	cfg.Recovery.Enabled = recovery
	cfg.Failure.Enabled = detect
	cfg.Failure.SuspicionTimeout = 3
	return cfg
}

// member pairs a node with its UDP fabric, so the demo can read wire
// counters after the run.
type member struct {
	node *adaptivegossip.Node
	tr   *adaptivegossip.UDPTransport
}

func run(loss float64, recovery bool, churn time.Duration, debug string) error {
	detect := churn > 0
	cfg := nodeConfig(recovery, detect)
	ctx := context.Background()

	var delivered atomic.Int64
	members := make([]member, 0, nodes)

	newMember := func(i int, bind string) (member, error) {
		id := fmt.Sprintf("host-%d", i)
		trOpts := []adaptivegossip.TransportOption{
			adaptivegossip.WithBind(bind),
			adaptivegossip.WithTransportSeed(int64(i) + 1),
		}
		if loss > 0 {
			trOpts = append(trOpts, adaptivegossip.WithLoss(loss))
		}
		tr, err := adaptivegossip.NewUDPTransport(trOpts...)
		if err != nil {
			return member{}, err
		}
		// Only host-0 exposes the debug listener: one scrape target for
		// the demo, and the per-node facades cannot share one address.
		cfg := cfg
		if i == 0 {
			cfg.Observability.DebugAddr = debug
		}
		node, err := adaptivegossip.NewNode(id, cfg,
			adaptivegossip.WithTransport(tr),
			adaptivegossip.WithSeed(int64(i)+1),
			adaptivegossip.WithDeliver(func(d adaptivegossip.Delivery) {
				delivered.Add(1)
			}),
			adaptivegossip.WithOnMemberChange(func(node, peer adaptivegossip.NodeID, status adaptivegossip.MemberStatus) {
				if detect {
					fmt.Printf("  [%s] sees %s: %s\n", node, peer, status)
				}
			}))
		if err != nil {
			// NewNode owns tr from WithTransport on: closed on failure.
			return member{}, err
		}
		return member{node: node, tr: tr}, nil
	}

	// Bind everyone first so the address book can be completed before
	// gossip starts.
	for i := 0; i < nodes; i++ {
		m, err := newMember(i, "127.0.0.1:0")
		if err != nil {
			return err
		}
		members = append(members, m)
	}
	defer func() {
		for _, m := range members {
			m.node.Close()
		}
	}()

	// Full-mesh address book.
	for i, m := range members {
		for j, peer := range members {
			if i == j {
				continue
			}
			if err := m.node.AddPeer(string(peer.node.ID()), peer.node.Addr()); err != nil {
				return err
			}
		}
	}
	for _, m := range members {
		if err := m.node.Start(ctx); err != nil {
			return err
		}
	}
	fmt.Printf("%d UDP nodes gossiping on loopback (e.g. %s at %s), loss %.0f%%, recovery %v, churn %v\n",
		nodes, members[0].node.ID(), members[0].node.Addr(), 100*loss, recovery, churn)
	if da := members[0].node.DebugAddr(); da != "" {
		fmt.Printf("%s debug listener on http://%s/debug/vars (also /metrics, /debug/pprof/)\n",
			members[0].node.ID(), da)
	}

	// Churn loop: kill the highest-indexed member (its socket closes —
	// a real process death as far as the others can tell), let the
	// detector confirm and evict it, then restart it on the same
	// address and watch it get re-admitted.
	churnDone := make(chan struct{})
	if detect {
		go func() {
			defer close(churnDone)
			victimIdx := nodes - 1
			for cycle := 0; cycle < 2; cycle++ {
				time.Sleep(churn)
				victim := members[victimIdx]
				addr := victim.node.Addr()
				fmt.Printf("churn: killing %s (%s)\n", victim.node.ID(), addr)
				victim.node.Close()

				// Down long enough for probe→suspect→confirm to play out.
				time.Sleep(time.Duration(8+cfg.Failure.SuspicionTimeout) * cfg.Period)

				fmt.Printf("churn: restarting %s on %s\n", victim.node.ID(), addr)
				reborn, err := newMember(victimIdx, addr)
				if err != nil {
					fmt.Printf("churn: restart failed: %v\n", err)
					return
				}
				for j, peer := range members {
					if j == victimIdx {
						continue
					}
					if err := reborn.node.AddPeer(string(peer.node.ID()), peer.node.Addr()); err != nil {
						fmt.Printf("churn: %v\n", err)
					}
				}
				if err := reborn.node.Start(ctx); err != nil {
					fmt.Printf("churn: %v\n", err)
					return
				}
				members[victimIdx] = reborn
			}
		}()
	} else {
		close(churnDone)
	}

	const toSend = 20
	sent := 0
	for i := 0; i < toSend; i++ {
		publisher := members[i%2] // two publishers
		if publisher.node.Publish([]byte(fmt.Sprintf("payload-%02d", i))) {
			sent++
		}
		time.Sleep(15 * time.Millisecond)
	}

	// Drain: well past the push window, so pull repair has time to
	// notice gaps (digest), request and receive retransmissions.
	time.Sleep(40 * cfg.Period)
	<-churnDone

	possible := sent * nodes
	ratio := 0.0
	if possible > 0 {
		ratio = float64(delivered.Load()) / float64(possible)
	}
	fmt.Printf("published %d/%d; total deliveries %d of %d possible — delivery ratio %.3f\n",
		sent, toSend, delivered.Load(), possible, ratio)
	st := members[0].tr.Stats()
	fmt.Printf("%s wire stats: sent %d datagrams (%d bytes), dropped %d to injected loss, received %d (%d bytes), decode errors %d\n",
		members[0].node.ID(), st.Sent, st.SentBytes, st.LossDropped, st.Received, st.RecvBytes, st.DecodeErrors)
	snap := members[0].node.Snapshot()
	fmt.Printf("%s: allowed %.2f msg/s, minBuff %d, avgAge %.2f\n",
		members[0].node.ID(), snap.AllowedRate, snap.MinBuff, snap.AvgAge)
	if recovery {
		var recovered, requested uint64
		for _, m := range members {
			rs := m.node.Snapshot().Recovery
			recovered += rs.EventsRecovered
			requested += rs.IDsRequested
		}
		fmt.Printf("recovery: %d events recovered across the cluster (%d ids requested)\n",
			recovered, requested)
	}
	if detect {
		var probes, suspects, confirms, revivals uint64
		for _, m := range members {
			fs := m.node.Snapshot().Failure
			probes += fs.ProbesSent
			suspects += fs.Suspects
			confirms += fs.Confirms
			revivals += fs.Revivals
		}
		fmt.Printf("failure detection: %d probes, %d suspicions, %d confirms, %d revivals; %s now tracks %d members\n",
			probes, suspects, confirms, revivals, members[0].node.ID(), len(members[0].node.Members()))
	}
	return nil
}

// UDP cluster: the deployment shape of the paper's prototype — one
// process per workstation, gossip over real datagrams. This demo runs
// eight nodes on loopback sockets inside one process, broadcasts from
// two of them, and prints delivery and wire statistics.
//
// With -loss, every node drops that fraction of its outgoing datagrams
// — a lossy LAN in miniature. The anti-entropy recovery subsystem
// (enabled by default here) pulls the missing events back, keeping the
// delivery ratio near 1.0 where plain push gossip would fall short.
//
// Run with:
//
//	go run ./examples/udpcluster                  # clean network
//	go run ./examples/udpcluster -loss 0.25       # 25% datagram loss
//	go run ./examples/udpcluster -loss 0.25 -recovery=false
package main

import (
	"flag"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"adaptivegossip"
)

const nodes = 8

func main() {
	loss := flag.Float64("loss", 0, "iid outgoing-datagram loss probability in [0,1]")
	recovery := flag.Bool("recovery", true, "enable digest-based anti-entropy recovery")
	flag.Parse()
	if err := run(*loss, *recovery); err != nil {
		log.SetFlags(0)
		log.Fatal(err)
	}
}

func run(loss float64, recovery bool) error {
	cfg := adaptivegossip.DefaultConfig()
	cfg.Period = 50 * time.Millisecond
	cfg.BufferCapacity = 60
	// A deliberately skinny push: fanout 1 and a 3-round lifetime leave
	// each event only a handful of transmissions, so injected loss
	// actually starves receivers — the regime recovery exists for.
	cfg.Fanout = 1
	cfg.MaxAge = 3
	cfg.Adaptation.InitialRate = 40 // admit the demo's publish burst
	cfg.RecoveryEnabled = recovery

	var delivered atomic.Int64
	members := make([]*adaptivegossip.Node, 0, nodes)

	// Bind everyone first so the address book can be completed before
	// gossip starts.
	for i := 0; i < nodes; i++ {
		node, err := adaptivegossip.NewUDPNode(adaptivegossip.NodeOptions{
			ID:       fmt.Sprintf("host-%d", i),
			Bind:     "127.0.0.1:0",
			Config:   cfg,
			Seed:     int64(i) + 1,
			SendLoss: loss,
			Deliver: func(ev adaptivegossip.Event) {
				delivered.Add(1)
			},
		})
		if err != nil {
			return err
		}
		members = append(members, node)
	}
	defer func() {
		for _, n := range members {
			n.Stop()
		}
	}()

	// Full-mesh address book.
	for i, n := range members {
		for j, peer := range members {
			if i == j {
				continue
			}
			if err := n.AddPeer(string(peer.ID()), peer.Addr()); err != nil {
				return err
			}
		}
	}
	for _, n := range members {
		if err := n.Start(); err != nil {
			return err
		}
	}
	fmt.Printf("%d UDP nodes gossiping on loopback (e.g. %s at %s), loss %.0f%%, recovery %v\n",
		nodes, members[0].ID(), members[0].Addr(), 100*loss, recovery)

	const toSend = 20
	sent := 0
	for i := 0; i < toSend; i++ {
		publisher := members[i%2] // two publishers
		if publisher.Publish([]byte(fmt.Sprintf("payload-%02d", i))) {
			sent++
		}
		time.Sleep(15 * time.Millisecond)
	}

	// Drain: well past the push window, so pull repair has time to
	// notice gaps (digest), request and receive retransmissions.
	time.Sleep(40 * cfg.Period)

	possible := sent * nodes
	ratio := 0.0
	if possible > 0 {
		ratio = float64(delivered.Load()) / float64(possible)
	}
	fmt.Printf("published %d/%d; total deliveries %d of %d possible — delivery ratio %.3f\n",
		sent, toSend, delivered.Load(), possible, ratio)
	st := members[0].TransportStats()
	fmt.Printf("%s wire stats: sent %d datagrams (%d bytes), dropped %d to injected loss, received %d (%d bytes), decode errors %d\n",
		members[0].ID(), st.Sent, st.SentBytes, st.LossDropped, st.Received, st.RecvBytes, st.DecodeErrors)
	snap := members[0].Snapshot()
	fmt.Printf("%s: allowed %.2f msg/s, minBuff %d, avgAge %.2f\n",
		members[0].ID(), snap.AllowedRate, snap.MinBuff, snap.AvgAge)
	if recovery {
		var recovered, requested uint64
		for _, n := range members {
			rs := n.Snapshot().Recovery
			recovered += rs.EventsRecovered
			requested += rs.IDsRequested
		}
		fmt.Printf("recovery: %d events recovered across the cluster (%d ids requested)\n",
			recovered, requested)
	}
	return nil
}

// UDP cluster: the deployment shape of the paper's prototype — one
// process per workstation, gossip over real datagrams. This demo runs
// eight nodes on loopback sockets inside one process, broadcasts from
// two of them, and prints delivery and wire statistics.
//
// Run with:
//
//	go run ./examples/udpcluster
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"adaptivegossip"
)

const nodes = 8

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatal(err)
	}
}

func run() error {
	cfg := adaptivegossip.DefaultConfig()
	cfg.Period = 50 * time.Millisecond
	cfg.BufferCapacity = 60
	cfg.MaxAge = 8
	cfg.Adaptation.InitialRate = 40 // admit the demo's publish burst

	var delivered atomic.Int64
	members := make([]*adaptivegossip.Node, 0, nodes)

	// Bind everyone first so the address book can be completed before
	// gossip starts.
	for i := 0; i < nodes; i++ {
		node, err := adaptivegossip.NewUDPNode(adaptivegossip.NodeOptions{
			ID:     fmt.Sprintf("host-%d", i),
			Bind:   "127.0.0.1:0",
			Config: cfg,
			Seed:   int64(i) + 1,
			Deliver: func(ev adaptivegossip.Event) {
				delivered.Add(1)
			},
		})
		if err != nil {
			return err
		}
		members = append(members, node)
	}
	defer func() {
		for _, n := range members {
			n.Stop()
		}
	}()

	// Full-mesh address book.
	for i, n := range members {
		for j, peer := range members {
			if i == j {
				continue
			}
			if err := n.AddPeer(string(peer.ID()), peer.Addr()); err != nil {
				return err
			}
		}
	}
	for _, n := range members {
		if err := n.Start(); err != nil {
			return err
		}
	}
	fmt.Printf("%d UDP nodes gossiping on loopback (e.g. %s at %s)\n",
		nodes, members[0].ID(), members[0].Addr())

	const toSend = 20
	sent := 0
	for i := 0; i < toSend; i++ {
		publisher := members[i%2] // two publishers
		if publisher.Publish([]byte(fmt.Sprintf("payload-%02d", i))) {
			sent++
		}
		time.Sleep(15 * time.Millisecond)
	}

	// Drain: a few age-bounds of rounds.
	time.Sleep(time.Duration(cfg.MaxAge+2) * cfg.Period)

	fmt.Printf("published %d/%d; total deliveries %d (max possible %d)\n",
		sent, toSend, delivered.Load(), sent*nodes)
	st := members[0].TransportStats()
	fmt.Printf("%s wire stats: sent %d datagrams (%d bytes), received %d (%d bytes), decode errors %d\n",
		members[0].ID(), st.Sent, st.SentBytes, st.Received, st.RecvBytes, st.DecodeErrors)
	snap := members[0].Snapshot()
	fmt.Printf("%s: allowed %.2f msg/s, minBuff %d, avgAge %.2f\n",
		members[0].ID(), snap.AllowedRate, snap.MinBuff, snap.AvgAge)
	return nil
}

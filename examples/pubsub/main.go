// Pub/sub with shared buffer budgets: the motivating scenario of the
// paper's introduction, through the public PubSub API. Topics
// map to independent adaptive broadcast groups; a peer subscribed to
// several topics splits its fixed buffer budget among them, so every
// subscription wave shifts the resources each group's adaptation sees
// and the publishers' allowed rates follow — with no coordination
// beyond gossip headers.
//
// The demo runs a busy "market-data" topic. Half of its subscribers
// then join a second "audit-log" topic, halving their market-data
// budget; the market publisher's allowance visibly drops. When they
// leave again, it recovers.
//
// Run with:
//
//	go run ./examples/pubsub
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"adaptivegossip"
)

const (
	peers        = 24
	budget       = 12 // events of buffer budget per peer, across all topics
	period       = 40 * time.Millisecond
	offeredEvery = 4 * time.Millisecond // 250 msg/s offered on market-data
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatal(err)
	}
}

func run() error {
	cfg := adaptivegossip.DefaultConfig()
	cfg.Period = period
	cfg.MaxAge = 8
	// Seed the publisher's allowance near the offered load so the demo
	// shows throttling down, not a slow climb from the default 1 msg/s.
	cfg.Adaptation.InitialRate = 260
	cfg.Adaptation.MaxRate = 400

	cluster, err := adaptivegossip.NewPubSub(peers, budget, cfg,
		adaptivegossip.WithSeed(7))
	if err != nil {
		return err
	}
	if err := cluster.Start(context.Background()); err != nil {
		return err
	}
	defer cluster.Close()

	// Everyone subscribes to market-data.
	for i := 0; i < peers; i++ {
		if err := cluster.Subscribe(i, "market-data"); err != nil {
			return err
		}
	}

	// Publisher: peer 0 pushes market updates as fast as its allowance
	// admits.
	stopPub := make(chan struct{})
	pubDone := make(chan struct{})
	go func() {
		defer close(pubDone)
		seq := 0
		ticker := time.NewTicker(offeredEvery)
		defer ticker.Stop()
		for {
			select {
			case <-stopPub:
				return
			case <-ticker.C:
				if _, err := cluster.Publish(0, "market-data", []byte(fmt.Sprintf("tick-%d", seq))); err != nil {
					return
				}
				seq++
			}
		}
	}()
	defer func() { close(stopPub); <-pubDone }()

	marketState := func() (adaptivegossip.TopicState, error) {
		states, err := cluster.State(0)
		if err != nil {
			return adaptivegossip.TopicState{}, err
		}
		for _, st := range states {
			if st.Topic == "market-data" {
				return st, nil
			}
		}
		return adaptivegossip.TopicState{}, fmt.Errorf("market-data not subscribed")
	}
	phase := func(name string) error {
		time.Sleep(60 * period) // let the mechanism settle
		st, err := marketState()
		if err != nil {
			return err
		}
		fmt.Printf("%-30s publisher-allowed=%6.1f msg/s  topic-buffer=%2d  minBuff=%2d\n",
			name, st.AllowedRate, st.BufferCap, st.MinBuff)
		return nil
	}

	fmt.Printf("topic market-data: %d subscribers, %d-event budget per peer\n\n", peers, budget)
	if err := phase("all budget on market-data:"); err != nil {
		return err
	}

	// Half the peers join audit-log: their market-data budget halves,
	// and the audit topic starts receiving a light trickle.
	for i := peers / 2; i < peers; i++ {
		if err := cluster.Subscribe(i, "audit-log"); err != nil {
			return err
		}
	}
	if _, err := cluster.Publish(peers-1, "audit-log", []byte("audit start")); err != nil {
		return err
	}
	if err := phase("half also on audit-log:"); err != nil {
		return err
	}

	// They leave audit-log again: the full budget returns.
	for i := peers / 2; i < peers; i++ {
		if err := cluster.Unsubscribe(i, "audit-log"); err != nil {
			return err
		}
	}
	time.Sleep(30 * period) // stale minimum ages out after W periods
	if err := phase("after leaving audit-log:"); err != nil {
		return err
	}

	fmt.Println("\nthe market publisher's allowance follows the most constrained")
	fmt.Println("subscriber's budget, discovered purely from gossip headers.")
	return nil
}

// Quickstart: a 16-node in-process broadcast group with the adaptive
// mechanism enabled. One node publishes a stream of messages; the
// program reports how widely each spread and what rate the adaptation
// allowed.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"adaptivegossip"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatal(err)
	}
	_ = os.Stdout.Sync()
}

func run() error {
	const (
		nodes    = 16
		messages = 40
	)

	var mu sync.Mutex
	deliveries := map[adaptivegossip.EventID]int{}

	cfg := adaptivegossip.DefaultConfig()
	cfg.Period = 50 * time.Millisecond // fast rounds for a demo
	cfg.BufferCapacity = 60

	cluster, err := adaptivegossip.NewCluster(nodes, cfg,
		adaptivegossip.WithSeed(2003),
		adaptivegossip.WithDeliver(func(node adaptivegossip.NodeID, ev adaptivegossip.Event) {
			mu.Lock()
			deliveries[ev.ID]++
			mu.Unlock()
		}))
	if err != nil {
		return err
	}
	cluster.Start()
	defer cluster.Stop()

	fmt.Printf("cluster of %d nodes, fanout %d, period %v\n", nodes, cfg.Fanout, cfg.Period)

	admitted := 0
	for i := 0; i < messages; i++ {
		if cluster.Publish(i%nodes, []byte(fmt.Sprintf("message-%02d", i))) {
			admitted++
		}
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Printf("published %d/%d messages (the token bucket paces admission)\n", admitted, messages)

	// Let dissemination finish: a few age-bound worth of rounds.
	time.Sleep(time.Duration(cfg.MaxAge+2) * cfg.Period)

	mu.Lock()
	full, partial := 0, 0
	for _, count := range deliveries {
		if count == nodes {
			full++
		} else {
			partial++
		}
	}
	mu.Unlock()
	fmt.Printf("delivered to all %d nodes: %d messages; partial: %d\n", nodes, full, partial)

	st := cluster.Stats()
	fmt.Printf("aggregate allowed rate: %.1f msg/s (min %.2f, max %.2f per node)\n",
		st.SumAllowedRate, st.MinAllowedRate, st.MaxAllowedRate)
	snap, err := cluster.Snapshot(0)
	if err != nil {
		return err
	}
	fmt.Printf("node-00: buffer %d/%d, minBuff estimate %d, avgAge %.2f\n",
		snap.BufferLen, snap.BufferCap, snap.MinBuff, snap.AvgAge)
	return nil
}

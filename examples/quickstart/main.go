// Quickstart: a 16-node in-process broadcast group with the adaptive
// mechanism enabled. One node publishes a stream of messages; the
// program consumes the cluster's delivery stream and reports how widely
// each message spread and what rate the adaptation allowed.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"adaptivegossip"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatal(err)
	}
	_ = os.Stdout.Sync()
}

func run() error {
	const (
		nodes    = 16
		messages = 40
	)

	cfg := adaptivegossip.DefaultConfig()
	cfg.Period = 50 * time.Millisecond // fast rounds for a demo
	cfg.BufferCapacity = 60

	cluster, err := adaptivegossip.NewCluster(nodes, cfg,
		adaptivegossip.WithSeed(2003))
	if err != nil {
		return err
	}
	ctx := context.Background()
	if err := cluster.Start(ctx); err != nil {
		return err
	}
	defer cluster.Close()

	// First-class delivery stream: every delivery in the cluster, no
	// callback plumbing. The channel closes when the cluster does.
	streamCtx, stopStream := context.WithCancel(ctx)
	defer stopStream()
	events := cluster.Events(streamCtx)
	counts := make(chan map[adaptivegossip.EventID]int, 1)
	go func() {
		deliveries := map[adaptivegossip.EventID]int{}
		for d := range events {
			deliveries[d.Event.ID]++
		}
		counts <- deliveries
	}()

	fmt.Printf("cluster of %d nodes, fanout %d, period %v\n", nodes, cfg.Fanout, cfg.Period)

	admitted := 0
	for i := 0; i < messages; i++ {
		if cluster.Publish(i%nodes, []byte(fmt.Sprintf("message-%02d", i))) {
			admitted++
		}
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Printf("published %d/%d messages (the token bucket paces admission)\n", admitted, messages)

	// Let dissemination finish: a few age-bound worth of rounds.
	time.Sleep(time.Duration(cfg.MaxAge+2) * cfg.Period)

	stopStream()
	deliveries := <-counts
	full, partial := 0, 0
	for _, count := range deliveries {
		if count == nodes {
			full++
		} else {
			partial++
		}
	}
	fmt.Printf("delivered to all %d nodes: %d messages; partial: %d\n", nodes, full, partial)

	st := cluster.Stats()
	fmt.Printf("aggregate allowed rate: %.1f msg/s (min %.2f, max %.2f per node)\n",
		st.SumAllowedRate, st.MinAllowedRate, st.MaxAllowedRate)
	snap, err := cluster.Snapshot(0)
	if err != nil {
		return err
	}
	fmt.Printf("node-00: buffer %d/%d, minBuff estimate %d, avgAge %.2f\n",
		snap.BufferLen, snap.BufferCap, snap.MinBuff, snap.AvgAge)
	return nil
}

// Dynamic resources: the paper's §4 scenario (Figure 9) through the
// public simulation API. A 60-node group runs at a fixed offered load;
// 20% of the nodes shrink their buffers mid-run and later partially
// recover. The adaptive mechanism discovers the new minimum through
// gossip headers alone and re-tunes every sender's allowance.
//
// The run uses virtual time — 7½ simulated minutes complete in well
// under a second. Run with:
//
//	go run ./examples/dynamic
package main

import (
	"fmt"
	"log"
	"time"

	"adaptivegossip"
	"adaptivegossip/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatal(err)
	}
}

func run() error {
	cfg := adaptivegossip.DefaultSimConfig()
	cfg.Adaptive = true
	cfg.Buffer = 90
	cfg.OfferedRate = 20 // msg/s aggregate, below the ~24.6 capacity of buffer 90
	cfg.Warmup = 0
	cfg.Duration = 450 * time.Second
	cfg.Seed = 9

	// 20% of the nodes shrink 90 → 45 at t=150s, then recover to 60 at
	// t=300s — exactly the paper's schedule.
	affected := workload.FirstFraction(cfg.N, 0.2)
	cfg.Resizes = []workload.Resize{
		{At: 150 * time.Second, Nodes: affected, Capacity: 45},
		{At: 300 * time.Second, Nodes: affected, Capacity: 60},
	}

	started := time.Now()
	res, err := adaptivegossip.Simulate(cfg)
	if err != nil {
		return err
	}

	fmt.Printf("simulated %v of a %d-node group in %v\n\n", cfg.Duration, cfg.N, time.Since(started).Round(time.Millisecond))
	fmt.Println("t(s)   allowed(msg/s)   atomicity(%)    [capacity change markers]")
	for i, p := range res.AllowedSeries {
		t := time.Duration(i) * cfg.Period
		if t >= cfg.Duration {
			break
		}
		if i%6 != 0 { // print every 30 simulated seconds
			continue
		}
		marker := ""
		switch {
		case t == 150*time.Second:
			marker = "  <- 20% of nodes: 90 -> 45"
		case t == 300*time.Second:
			marker = "  <- 20% of nodes: 45 -> 60"
		}
		atomicity := 0.0
		if i < len(res.AtomicitySeries) {
			atomicity = res.AtomicitySeries[i].AtomicityPct
		}
		fmt.Printf("%4.0f   %14.2f   %12.1f%s\n", t.Seconds(), p.Mean, atomicity, marker)
	}

	fmt.Printf("\nwhole-run: input %.2f msg/s, mean coverage %.1f%%, atomicity %.1f%%\n",
		res.InputRate, res.Summary.MeanReceiversPct, res.Summary.AtomicityPct)
	fmt.Printf("final minBuff estimate across the group: %d (the 60-capacity minority)\n", res.MinBuffFinal)
	return nil
}

package adaptivegossip

import (
	"sort"

	"adaptivegossip/internal/gossip"
	"adaptivegossip/internal/health"
	"adaptivegossip/internal/observe"
	"adaptivegossip/internal/runtime"
	"adaptivegossip/internal/transport"
)

// Stats is the unified counter snapshot shared by all three facades:
// Node.Stats, Cluster.Stats and PubSub.Stats return the same shape, so
// monitoring code works against any deployment of the protocol. Rates
// are aggregated per member (Nodes = 1 for a single Node); the
// Min/Max/Sum triple summarizes the adaptation allowances across the
// group.
type Stats struct {
	// Nodes is the number of local members aggregated into this
	// snapshot.
	Nodes int
	// Published counts admitted local broadcasts.
	Published uint64
	// Delivered counts events delivered to the application.
	Delivered uint64
	// DroppedCapacity counts events evicted by buffer pressure.
	DroppedCapacity uint64
	// DroppedExpired counts events purged by the age bound.
	DroppedExpired uint64
	// MessagesSent counts outgoing gossip messages.
	MessagesSent uint64
	// MinAllowedRate / MaxAllowedRate / SumAllowedRate summarize the
	// adaptation mechanism's current per-member allowances (msg/s).
	MinAllowedRate float64
	MaxAllowedRate float64
	SumAllowedRate float64
	// EventsRecovered counts events repaired by the anti-entropy
	// subsystem (zero unless Config.Recovery.Enabled).
	EventsRecovered uint64
	// ProbesSent and Confirms count failure-detector activity (zero
	// unless Config.Failure.Enabled).
	ProbesSent uint64
	Confirms   uint64
	// StreamDropped counts deliveries lost to Events subscribers that
	// fell more than DefaultEventStreamBuffer behind.
	StreamDropped uint64
	// RecvQueueDrops counts inbound datagrams the transport discarded
	// because its receive dispatch queue was full — the group's
	// consumers fell behind the wire (UDP fabrics only; see
	// WithRecvQueue to size the queue).
	RecvQueueDrops uint64
	// HealthDigestsSent, HealthDigestsReceived and HealthDigestsMerged
	// count health-digest dissemination activity (zero unless
	// Config.Observability.HealthDigests).
	HealthDigestsSent     uint64
	HealthDigestsReceived uint64
	HealthDigestsMerged   uint64
	// Wire carries the transport fabric's counters (messages, bytes,
	// read errors, datagram splits). Zero when the group's Transport
	// does not implement WireStatser.
	Wire WireStats
	// Peers is the per-peer link telemetry: what the group sent toward
	// and received from each remote peer, sorted by peer id. All three
	// facades fill it, so per-link monitoring works against any
	// deployment shape; in multi-member groups (Cluster, PubSub) the
	// members' observations of each peer pool into one row.
	Peers []PeerLinkStats
}

// PeerLinkStats is one peer's link telemetry row in Stats.Peers: the
// message, byte, fan-out and failure counters kept by the transports,
// plus a summary of the ping round-trip-time distribution harvested
// from the failure detector (zero unless Config.Failure.Enabled).
type PeerLinkStats struct {
	// Peer is the remote member the row describes.
	Peer NodeID
	// MessagesSent and BytesSent count traffic toward the peer (bytes
	// stay zero on fabrics that do not serialize).
	MessagesSent uint64
	BytesSent    uint64
	// MessagesReceived and BytesReceived count traffic from the peer,
	// attributed by the decoded sender id.
	MessagesReceived uint64
	BytesReceived    uint64
	// FanoutSends counts times the peer was chosen as a gossip fan-out
	// target.
	FanoutSends uint64
	// Drops counts outgoing messages to the peer dropped by injected
	// loss; SendErrors counts failed sends (socket errors, unknown
	// address).
	Drops      uint64
	SendErrors uint64
	// RTTSamples, RTTMeanMicros, RTTP50Micros and RTTP99Micros
	// summarize the ping→ack round-trip times to the peer, in
	// microseconds.
	RTTSamples    uint64
	RTTMeanMicros float64
	RTTP50Micros  float64
	RTTP99Micros  float64
}

// peerLinkStats converts the internal per-peer snapshot (already
// sorted by peer id) into the public rows.
func peerLinkStats(snaps []observe.PeerSnapshot) []PeerLinkStats {
	if len(snaps) == 0 {
		return nil
	}
	out := make([]PeerLinkStats, 0, len(snaps))
	for _, p := range snaps {
		out = append(out, PeerLinkStats{
			Peer:             NodeID(p.Peer),
			MessagesSent:     p.MessagesSent,
			BytesSent:        p.BytesSent,
			MessagesReceived: p.MessagesReceived,
			BytesReceived:    p.BytesReceived,
			FanoutSends:      p.FanoutSends,
			Drops:            p.Drops,
			SendErrors:       p.SendErrors,
			RTTSamples:       p.RTT.Count,
			RTTMeanMicros:    p.RTT.Mean(),
			RTTP50Micros:     p.RTT.Quantile(0.50),
			RTTP99Micros:     p.RTT.Quantile(0.99),
		})
	}
	return out
}

// MemberHealth is one member's entry in the converged cluster health
// view (Node.ClusterHealth, Cluster.ClusterHealth, PubSub.ClusterHealth
// and the /debug/gossip/cluster endpoint): the member's self-reported
// digest — counters, buffer occupancy and a delivery hop-count summary
// — plus how stale the local copy of it is. The JSON field names are
// the endpoint's wire contract.
type MemberHealth struct {
	// Node is the member the entry describes.
	Node NodeID `json:"node"`
	// Round is the reporter's gossip round when the digest was built;
	// WallMillis its wall clock (Unix milliseconds, zero in
	// deterministic drivers).
	Round      uint64 `json:"round"`
	WallMillis uint64 `json:"wall_millis,omitempty"`
	// Published through BytesReceived mirror the reporter's protocol
	// counters at digest time.
	Published        uint64 `json:"published"`
	Delivered        uint64 `json:"delivered"`
	DroppedCapacity  uint64 `json:"dropped_capacity"`
	DroppedExpired   uint64 `json:"dropped_expired"`
	MessagesSent     uint64 `json:"messages_sent"`
	MessagesReceived uint64 `json:"messages_received"`
	BytesSent        uint64 `json:"bytes_sent"`
	BytesReceived    uint64 `json:"bytes_received"`
	// BufferLen and BufferCap are the reporter's events-buffer
	// occupancy and capacity at digest time.
	BufferLen int `json:"buffer_len"`
	BufferCap int `json:"buffer_cap"`
	// HopsSamples, HopsMean and HopsP99 summarize the reporter's
	// delivery hop-count distribution — the cluster's live
	// rounds-to-convergence measure.
	HopsSamples uint64  `json:"hops_samples"`
	HopsMean    float64 `json:"hops_mean"`
	HopsP99     float64 `json:"hops_p99"`
	// StalenessRounds is how many local gossip rounds have passed since
	// this digest was merged (0 for the local member's own digest).
	StalenessRounds uint64 `json:"staleness_rounds"`
}

// memberHealthView flattens the internal converged view into the
// public shape (input arrives sorted by node id).
func memberHealthView(view []health.MemberHealth) []MemberHealth {
	if len(view) == 0 {
		return nil
	}
	out := make([]MemberHealth, 0, len(view))
	for _, m := range view {
		d := m.Digest
		out = append(out, MemberHealth{
			Node:             d.Node,
			Round:            d.Round,
			WallMillis:       d.WallMillis,
			Published:        d.Published,
			Delivered:        d.Delivered,
			DroppedCapacity:  d.DroppedCapacity,
			DroppedExpired:   d.DroppedExpired,
			MessagesSent:     d.MessagesSent,
			MessagesReceived: d.MessagesReceived,
			BytesSent:        d.BytesSent,
			BytesReceived:    d.BytesReceived,
			BufferLen:        d.BufferLen,
			BufferCap:        d.BufferCap,
			HopsSamples:      d.DeliverHops.Count,
			HopsMean:         d.DeliverHops.Mean(),
			HopsP99:          d.DeliverHops.Quantile(0.99),
			StalenessRounds:  m.StalenessRounds,
		})
	}
	return out
}

// mergeMemberHealth folds several members' converged views into one:
// per reported node the freshest digest wins (highest Round; ties break
// toward the least stale copy), and the result is sorted by node id.
// Multi-member facades use it so their cluster view deduplicates what
// every member learned independently.
func mergeMemberHealth(views ...[]health.MemberHealth) []health.MemberHealth {
	best := make(map[gossip.NodeID]health.MemberHealth)
	for _, view := range views {
		for _, m := range view {
			cur, ok := best[m.Digest.Node]
			if !ok || m.Digest.Round > cur.Digest.Round ||
				(m.Digest.Round == cur.Digest.Round && m.StalenessRounds < cur.StalenessRounds) {
				best[m.Digest.Node] = m
			}
		}
	}
	if len(best) == 0 {
		return nil
	}
	out := make([]health.MemberHealth, 0, len(best))
	for _, m := range best {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Digest.Node < out[j].Digest.Node })
	return out
}

// healthAugment builds the AugmentFunc that stamps a member's own
// digest with its wire byte counters: per-member from the endpoint on
// fabrics that serialize (UDP), falling back to the shared fabric's
// totals. It runs on the member's node loop against atomic counters.
func healthAugment(ep Endpoint, fabric Transport) health.AugmentFunc {
	type epStatser interface{ Stats() transport.UDPStats }
	return func(d *gossip.HealthDigest) {
		if es, ok := ep.(epStatser); ok {
			st := es.Stats()
			d.BytesSent, d.BytesReceived = st.SentBytes, st.RecvBytes
			return
		}
		if ws, ok := fabric.(WireStatser); ok {
			w := ws.WireStats()
			d.BytesSent, d.BytesReceived = w.SentBytes, w.RecvBytes
		}
	}
}

// addWire folds the fabric's wire counters into the snapshot. Each
// counter is read exactly once by the fabric's WireStats method (an
// atomic load or one mutex-guarded copy per counter), so the snapshot
// is internally consistent even while senders and receivers race; the
// RecvQueueDrops top-level field is filled from the same single read.
func (s *Stats) addWire(fabric Transport) {
	ws, ok := fabric.(WireStatser)
	if !ok {
		return
	}
	w := ws.WireStats()
	s.Wire = w
	s.RecvQueueDrops = w.RecvQueueDrops
}

// add folds one member's runtime snapshot into the aggregate.
func (s *Stats) add(snap runtime.NodeSnapshot) {
	s.addRates(snap.AllowedRate)
	s.Published += snap.Adaptive.Published
	s.Delivered += snap.Gossip.Delivered
	s.DroppedCapacity += snap.Gossip.DroppedCapacity
	s.DroppedExpired += snap.Gossip.DroppedExpired
	s.MessagesSent += snap.Gossip.MessagesSent
	s.EventsRecovered += snap.Recovery.EventsRecovered
	s.ProbesSent += snap.Failure.ProbesSent
	s.Confirms += snap.Failure.Confirms
	s.HealthDigestsSent += snap.Health.DigestsSent
	s.HealthDigestsReceived += snap.Health.DigestsReceived
	s.HealthDigestsMerged += snap.Health.DigestsMerged
}

// addPeers fills the per-peer link telemetry rows from the group's
// peer table snapshot.
func (s *Stats) addPeers(table *observe.PeerTable) {
	s.Peers = peerLinkStats(table.Snapshot())
}

// addRates folds one member's allowance into the Min/Max/Sum triple and
// bumps Nodes.
func (s *Stats) addRates(allowed float64) {
	if s.Nodes == 0 || allowed < s.MinAllowedRate {
		s.MinAllowedRate = allowed
	}
	if s.Nodes == 0 || allowed > s.MaxAllowedRate {
		s.MaxAllowedRate = allowed
	}
	s.SumAllowedRate += allowed
	s.Nodes++
}

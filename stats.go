package adaptivegossip

import "adaptivegossip/internal/runtime"

// Stats is the unified counter snapshot shared by all three facades:
// Node.Stats, Cluster.Stats and PubSub.Stats return the same shape, so
// monitoring code works against any deployment of the protocol. Rates
// are aggregated per member (Nodes = 1 for a single Node); the
// Min/Max/Sum triple summarizes the adaptation allowances across the
// group.
type Stats struct {
	// Nodes is the number of local members aggregated into this
	// snapshot.
	Nodes int
	// Published counts admitted local broadcasts.
	Published uint64
	// Delivered counts events delivered to the application.
	Delivered uint64
	// DroppedCapacity counts events evicted by buffer pressure.
	DroppedCapacity uint64
	// DroppedExpired counts events purged by the age bound.
	DroppedExpired uint64
	// MessagesSent counts outgoing gossip messages.
	MessagesSent uint64
	// MinAllowedRate / MaxAllowedRate / SumAllowedRate summarize the
	// adaptation mechanism's current per-member allowances (msg/s).
	MinAllowedRate float64
	MaxAllowedRate float64
	SumAllowedRate float64
	// EventsRecovered counts events repaired by the anti-entropy
	// subsystem (zero unless Config.Recovery.Enabled).
	EventsRecovered uint64
	// ProbesSent and Confirms count failure-detector activity (zero
	// unless Config.Failure.Enabled).
	ProbesSent uint64
	Confirms   uint64
	// StreamDropped counts deliveries lost to Events subscribers that
	// fell more than DefaultEventStreamBuffer behind.
	StreamDropped uint64
	// RecvQueueDrops counts inbound datagrams the transport discarded
	// because its receive dispatch queue was full — the group's
	// consumers fell behind the wire (UDP fabrics only; see
	// WithRecvQueue to size the queue).
	RecvQueueDrops uint64
	// Wire carries the transport fabric's counters (messages, bytes,
	// read errors, datagram splits). Zero when the group's Transport
	// does not implement WireStatser.
	Wire WireStats
}

// addWire folds the fabric's wire counters into the snapshot. Each
// counter is read exactly once by the fabric's WireStats method (an
// atomic load or one mutex-guarded copy per counter), so the snapshot
// is internally consistent even while senders and receivers race; the
// RecvQueueDrops top-level field is filled from the same single read.
func (s *Stats) addWire(fabric Transport) {
	ws, ok := fabric.(WireStatser)
	if !ok {
		return
	}
	w := ws.WireStats()
	s.Wire = w
	s.RecvQueueDrops = w.RecvQueueDrops
}

// add folds one member's runtime snapshot into the aggregate.
func (s *Stats) add(snap runtime.NodeSnapshot) {
	s.addRates(snap.AllowedRate)
	s.Published += snap.Adaptive.Published
	s.Delivered += snap.Gossip.Delivered
	s.DroppedCapacity += snap.Gossip.DroppedCapacity
	s.DroppedExpired += snap.Gossip.DroppedExpired
	s.MessagesSent += snap.Gossip.MessagesSent
	s.EventsRecovered += snap.Recovery.EventsRecovered
	s.ProbesSent += snap.Failure.ProbesSent
	s.Confirms += snap.Failure.Confirms
}

// addRates folds one member's allowance into the Min/Max/Sum triple and
// bumps Nodes.
func (s *Stats) addRates(allowed float64) {
	if s.Nodes == 0 || allowed < s.MinAllowedRate {
		s.MinAllowedRate = allowed
	}
	if s.Nodes == 0 || allowed > s.MaxAllowedRate {
		s.MaxAllowedRate = allowed
	}
	s.SumAllowedRate += allowed
	s.Nodes++
}

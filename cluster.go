package adaptivegossip

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"adaptivegossip/internal/core"
	"adaptivegossip/internal/gossip"
	"adaptivegossip/internal/health"
	"adaptivegossip/internal/membership"
	"adaptivegossip/internal/runtime"
)

// NodeSnapshot is a point-in-time view of one node's state.
type NodeSnapshot = runtime.NodeSnapshot

// Cluster is an in-process broadcast group: one goroutine-driven node
// per member, connected by a pluggable message fabric — the in-memory
// fabric by default, real loopback UDP (or any custom Transport) via
// WithTransport. It is the quickest way to exercise the protocol and
// the backbone of the examples.
type Cluster struct {
	cfg     Config
	names   []NodeID
	fabric  Transport
	eps     []Endpoint
	regs    []*membership.Registry // one per node: detector verdicts are per-observer
	runners []*runtime.Runner
	hub     *streamHub
	obs     *groupObservability

	mu        sync.Mutex
	started   bool
	epStarted int // endpoints [0, epStarted) have live receive loops
	closed    bool
	done      chan struct{}
}

// NewCluster builds an n-node cluster with the given configuration and
// the shared option set (WithSeed, WithDeliver, WithTransport,
// WithOnMemberChange, WithNamePrefix). Call Start to begin gossiping
// and Close to tear everything down.
func NewCluster(n int, cfg Config, opts ...Option) (*Cluster, error) {
	o, oerr := applyOptions(facadeCluster, groupOptions{seed: 1, prefix: "node-"}, opts)
	// Any failure from here on closes a handed-over transport: the
	// group owns it from the moment WithTransport is applied.
	var obs *groupObservability
	fail := func(err error) (*Cluster, error) {
		if o.fabric != nil {
			o.fabric.Close()
		}
		if obs != nil {
			obs.close()
		}
		return nil, err
	}
	if oerr != nil {
		return fail(oerr)
	}
	if n < 2 {
		return fail(fmt.Errorf("adaptivegossip: cluster needs at least 2 nodes, got %d", n))
	}
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return fail(err)
	}

	if o.fabric == nil {
		fabric, err := NewMemTransport(WithTransportSeed(o.seed))
		if err != nil {
			return fail(err)
		}
		o.fabric = fabric
	}
	fabric := o.fabric
	if err := applyTransportConfig(fabric, cfg.Transport); err != nil {
		return fail(err)
	}

	names := make([]NodeID, n)
	for i := range names {
		names[i] = NodeID(fmt.Sprintf("%s%02d", o.prefix, i))
	}
	c := &Cluster{
		cfg:    cfg,
		names:  names,
		fabric: fabric,
		hub:    newStreamHub(),
		done:   make(chan struct{}),
	}
	obs = newGroupObservability(cfg.Observability)
	c.obs = obs
	var shared *membership.Registry
	if !cfg.Failure.Enabled {
		shared = membership.NewRegistry(names...)
	}

	for i := range names {
		name := names[i]
		deliver := func(ev Event) {
			d := Delivery{Node: name, Event: ev}
			c.hub.publish(d)
			if o.deliver != nil {
				o.deliver(d)
			}
		}
		// With failure detection, each node owns its membership view so
		// a detector's verdicts evict from (and re-admit to) that
		// node's gossip targets only. Without it the views never
		// diverge, so all nodes share one registry.
		reg := shared
		if cfg.Failure.Enabled {
			reg = membership.NewRegistry(names...)
		}
		c.regs = append(c.regs, reg)
		ep, err := fabric.Endpoint(name)
		if err != nil {
			return fail(err)
		}
		c.eps = append(c.eps, ep)
		obs.attachLinks(ep)
		node, err := core.NewAdaptiveNode(core.NodeConfig{
			ID:       name,
			Gossip:   cfg.gossipParams(),
			Adaptive: cfg.Adaptive,
			Core:     cfg.Adaptation,
			Recovery: cfg.Recovery.params(),
			Failure:  cfg.Failure.params(),
			OnMembership: func(peer gossip.NodeID, status gossip.MemberStatus) {
				switch status {
				case gossip.MemberConfirmed:
					reg.Remove(peer)
				case gossip.MemberAlive:
					reg.Add(peer)
				}
				if o.onMember != nil {
					o.onMember(name, peer, status)
				}
			},
			Peers:         reg,
			RNG:           rand.New(rand.NewPCG(uint64(o.seed), uint64(i)+1)),
			Deliver:       deliver,
			Metrics:       obs.node,
			Tracer:        obs.tracer(),
			Links:         obs.peers,
			Health:        cfg.Observability.healthParams(),
			HealthAugment: healthAugment(ep, fabric),
			Start:         time.Now(),
		})
		if err != nil {
			return fail(err)
		}
		r, err := runtime.NewRunner(runtime.Config{
			Node:      node,
			Transport: ep,
			Period:    cfg.Period,
			PhaseSeed: uint64(o.seed)*2_654_435_761 + uint64(i) + 1,
			Metrics:   obs.runner,
		})
		if err != nil {
			return fail(err)
		}
		c.runners = append(c.runners, r)
	}
	if err := obs.bindServer(cfg.Observability.DebugAddr,
		func() Stats { return c.Stats() }, c.ClusterHealth); err != nil {
		return fail(err)
	}
	return c, nil
}

// Len reports the cluster size.
func (c *Cluster) Len() int { return len(c.runners) }

// Nodes returns the member names in index order.
func (c *Cluster) Nodes() []NodeID {
	return append([]NodeID(nil), c.names...)
}

// Start launches every node. Cancelling ctx closes the cluster; a
// closed cluster cannot be restarted. Idempotent while open — every
// context passed to Start is watched, so cancelling any of them closes
// the cluster. A transient endpoint failure may be retried: already
// started endpoints are not started twice.
func (c *Cluster) Start(ctx context.Context) error {
	if ctx == nil {
		return fmt.Errorf("adaptivegossip: nil context")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("adaptivegossip: cluster closed")
	}
	if c.started {
		watchContext(ctx, c.done, c.Close)
		return nil
	}
	for ; c.epStarted < len(c.eps); c.epStarted++ {
		if s, ok := c.eps[c.epStarted].(starter); ok {
			if err := s.Start(); err != nil {
				return err
			}
		}
	}
	for _, r := range c.runners {
		r.Start()
	}
	c.started = true
	watchContext(ctx, c.done, c.Close)
	return nil
}

// Close terminates every node, the fabric and every Events stream.
// Idempotent; later calls return nil.
func (c *Cluster) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	close(c.done)
	for _, r := range c.runners {
		r.Stop()
	}
	var first error
	for _, ep := range c.eps {
		if err := ep.Close(); err != nil && first == nil {
			first = err
		}
	}
	if err := c.fabric.Close(); err != nil && first == nil {
		first = err
	}
	c.hub.close()
	c.obs.close()
	return first
}

// Events returns a stream of every delivery in the cluster. From
// subscription onward the stream sees every delivery the WithDeliver
// callback sees; it is closed when ctx is cancelled or the cluster is
// closed. A subscriber that falls more than DefaultEventStreamBuffer
// behind loses deliveries (counted in Stats.StreamDropped).
func (c *Cluster) Events(ctx context.Context) <-chan Delivery {
	return c.hub.subscribe(ctx)
}

func (c *Cluster) runner(i int) (*runtime.Runner, error) {
	if i < 0 || i >= len(c.runners) {
		return nil, fmt.Errorf("adaptivegossip: node index %d out of range [0,%d)", i, len(c.runners))
	}
	return c.runners[i], nil
}

// Publish broadcasts payload from node i, reporting whether the
// message was admitted (adaptive nodes rate-limit at the allowance).
func (c *Cluster) Publish(i int, payload []byte) bool {
	r, err := c.runner(i)
	if err != nil {
		return false
	}
	return r.Publish(payload)
}

// SetBufferCapacity resizes node i's buffer at runtime — the paper's
// dynamic-resource scenario.
func (c *Cluster) SetBufferCapacity(i, capacity int) error {
	r, err := c.runner(i)
	if err != nil {
		return err
	}
	return r.SetBufferCapacity(capacity)
}

// Snapshot captures node i's state.
func (c *Cluster) Snapshot(i int) (NodeSnapshot, error) {
	r, err := c.runner(i)
	if err != nil {
		return NodeSnapshot{}, err
	}
	return r.Snapshot(), nil
}

// Members returns node i's current gossip target set (itself
// included). With Config.Failure.Enabled, confirmed-crashed members
// disappear from the node's view and rejoining members return to it;
// otherwise all nodes share one static view.
func (c *Cluster) Members(i int) ([]NodeID, error) {
	if i < 0 || i >= len(c.regs) {
		return nil, fmt.Errorf("adaptivegossip: node index %d out of range [0,%d)", i, len(c.regs))
	}
	return c.regs[i].IDs(), nil
}

// Stats aggregates the unified counter snapshot across the cluster.
func (c *Cluster) Stats() Stats {
	var st Stats
	for _, r := range c.runners {
		st.add(r.Snapshot())
	}
	st.StreamDropped = c.hub.droppedCount()
	st.addWire(c.fabric)
	st.addPeers(c.obs.peers)
	return st
}

// ClusterHealth returns the converged health view, sorted by member
// id: every member's independently gossip-learned digests merged, the
// freshest digest winning per member. Empty unless
// Config.Observability.HealthDigests is set.
func (c *Cluster) ClusterHealth() []MemberHealth {
	views := make([][]health.MemberHealth, 0, len(c.runners))
	for _, r := range c.runners {
		views = append(views, r.ClusterHealth())
	}
	return memberHealthView(mergeMemberHealth(views...))
}

// DebugAddr returns the bound address of the debug HTTP listener, or
// "" when Config.Observability.DebugAddr was empty.
func (c *Cluster) DebugAddr() string { return c.obs.debugAddr() }

package adaptivegossip

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"adaptivegossip/internal/core"
	"adaptivegossip/internal/gossip"
	"adaptivegossip/internal/membership"
	"adaptivegossip/internal/runtime"
	"adaptivegossip/internal/transport"
)

// DeliverFunc observes deliveries across a cluster.
type DeliverFunc func(node NodeID, ev Event)

// NodeSnapshot is a point-in-time view of one node's state.
type NodeSnapshot = runtime.NodeSnapshot

// Cluster is an in-process broadcast group: one goroutine-driven node
// per member, connected by an in-memory message fabric with optional
// latency and loss injection. It is the quickest way to exercise the
// protocol and the backbone of the examples.
type Cluster struct {
	cfg     Config
	names   []NodeID
	net     *transport.MemNetwork
	regs    []*membership.Registry // one per node: detector verdicts are per-observer
	runners []*runtime.Runner

	mu      sync.Mutex
	started bool
	stopped bool
}

type clusterOptions struct {
	seed       int64
	latencyMin time.Duration
	latencyMax time.Duration
	loss       float64
	deliver    DeliverFunc
	prefix     string
}

// ClusterOption configures NewCluster.
type ClusterOption func(*clusterOptions) error

// WithSeed fixes the cluster's randomness for reproducible runs.
func WithSeed(seed int64) ClusterOption {
	return func(o *clusterOptions) error {
		o.seed = seed
		return nil
	}
}

// WithLatency injects uniform delivery latency into the fabric.
func WithLatency(min, max time.Duration) ClusterOption {
	return func(o *clusterOptions) error {
		if min < 0 || max < min {
			return fmt.Errorf("adaptivegossip: invalid latency bounds [%v, %v]", min, max)
		}
		o.latencyMin, o.latencyMax = min, max
		return nil
	}
}

// WithLoss injects iid message loss into the fabric.
func WithLoss(p float64) ClusterOption {
	return func(o *clusterOptions) error {
		if p < 0 || p > 1 {
			return fmt.Errorf("adaptivegossip: loss probability %v out of [0,1]", p)
		}
		o.loss = p
		return nil
	}
}

// WithDeliver observes every delivery in the cluster. The callback
// runs on node goroutines and must be fast and thread-safe.
func WithDeliver(fn DeliverFunc) ClusterOption {
	return func(o *clusterOptions) error {
		o.deliver = fn
		return nil
	}
}

// WithNamePrefix sets the node name prefix (default "node-").
func WithNamePrefix(prefix string) ClusterOption {
	return func(o *clusterOptions) error {
		o.prefix = prefix
		return nil
	}
}

// NewCluster builds an n-node cluster with the given configuration.
// Call Start to begin gossiping and Stop to tear everything down.
func NewCluster(n int, cfg Config, opts ...ClusterOption) (*Cluster, error) {
	if n < 2 {
		return nil, fmt.Errorf("adaptivegossip: cluster needs at least 2 nodes, got %d", n)
	}
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	o := clusterOptions{seed: 1, prefix: "node-"}
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}

	memOpts := []transport.MemOption{transport.WithMemSeed(uint64(o.seed) + 0x5EED)}
	if o.latencyMax > 0 {
		memOpts = append(memOpts, transport.WithMemLatency(o.latencyMin, o.latencyMax))
	}
	if o.loss > 0 {
		memOpts = append(memOpts, transport.WithMemLoss(o.loss))
	}
	net, err := transport.NewMemNetwork(memOpts...)
	if err != nil {
		return nil, err
	}

	names := make([]NodeID, n)
	for i := range names {
		names[i] = NodeID(fmt.Sprintf("%s%02d", o.prefix, i))
	}
	c := &Cluster{cfg: cfg, names: names, net: net}
	var shared *membership.Registry
	if !cfg.FailureDetectionEnabled {
		shared = membership.NewRegistry(names...)
	}

	for i := range names {
		name := names[i]
		var deliver gossip.DeliverFunc
		if o.deliver != nil {
			fn := o.deliver
			deliver = func(ev Event) { fn(name, ev) }
		}
		// With failure detection, each node owns its membership view so
		// a detector's verdicts evict from (and re-admit to) that
		// node's gossip targets only. Without it the views never
		// diverge, so all nodes share one registry.
		reg := shared
		if cfg.FailureDetectionEnabled {
			reg = membership.NewRegistry(names...)
		}
		c.regs = append(c.regs, reg)
		node, err := core.NewAdaptiveNode(core.NodeConfig{
			ID:       name,
			Gossip:   cfg.gossipParams(),
			Adaptive: cfg.Adaptive,
			Core:     cfg.Adaptation,
			Recovery: cfg.recoveryParams(),
			Failure:  cfg.failureParams(),
			OnMembership: func(id gossip.NodeID, status gossip.MemberStatus) {
				switch status {
				case gossip.MemberConfirmed:
					reg.Remove(id)
				case gossip.MemberAlive:
					reg.Add(id)
				}
			},
			Peers:   reg,
			RNG:     rand.New(rand.NewPCG(uint64(o.seed), uint64(i)+1)),
			Deliver: deliver,
			Start:   time.Now(),
		})
		if err != nil {
			net.Close()
			return nil, err
		}
		ep, err := net.Endpoint(name)
		if err != nil {
			net.Close()
			return nil, err
		}
		r, err := runtime.NewRunner(runtime.Config{
			Node:      node,
			Transport: ep,
			Period:    cfg.Period,
			PhaseSeed: uint64(o.seed)*2_654_435_761 + uint64(i) + 1,
		})
		if err != nil {
			net.Close()
			return nil, err
		}
		c.runners = append(c.runners, r)
	}
	return c, nil
}

// Len reports the cluster size.
func (c *Cluster) Len() int { return len(c.runners) }

// Nodes returns the member names in index order.
func (c *Cluster) Nodes() []NodeID {
	return append([]NodeID(nil), c.names...)
}

// Start launches every node. Idempotent.
func (c *Cluster) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return
	}
	c.started = true
	for _, r := range c.runners {
		r.Start()
	}
}

// Stop terminates every node and the fabric. Idempotent.
func (c *Cluster) Stop() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	c.stopped = true
	c.mu.Unlock()
	for _, r := range c.runners {
		r.Stop()
	}
	c.net.Close()
}

func (c *Cluster) runner(i int) (*runtime.Runner, error) {
	if i < 0 || i >= len(c.runners) {
		return nil, fmt.Errorf("adaptivegossip: node index %d out of range [0,%d)", i, len(c.runners))
	}
	return c.runners[i], nil
}

// Publish broadcasts payload from node i, reporting whether the
// message was admitted (adaptive nodes rate-limit at the allowance).
func (c *Cluster) Publish(i int, payload []byte) bool {
	r, err := c.runner(i)
	if err != nil {
		return false
	}
	return r.Publish(payload)
}

// SetBufferCapacity resizes node i's buffer at runtime — the paper's
// dynamic-resource scenario.
func (c *Cluster) SetBufferCapacity(i, capacity int) error {
	r, err := c.runner(i)
	if err != nil {
		return err
	}
	return r.SetBufferCapacity(capacity)
}

// Snapshot captures node i's state.
func (c *Cluster) Snapshot(i int) (NodeSnapshot, error) {
	r, err := c.runner(i)
	if err != nil {
		return NodeSnapshot{}, err
	}
	return r.Snapshot(), nil
}

// Members returns node i's current gossip target set (itself
// included). With FailureDetectionEnabled, confirmed-crashed members
// disappear from the node's view and rejoining members return to it;
// otherwise all nodes share one static view.
func (c *Cluster) Members(i int) ([]NodeID, error) {
	if i < 0 || i >= len(c.regs) {
		return nil, fmt.Errorf("adaptivegossip: node index %d out of range [0,%d)", i, len(c.regs))
	}
	return c.regs[i].IDs(), nil
}

// ClusterStats aggregates per-node counters.
type ClusterStats struct {
	Published       uint64
	Delivered       uint64
	DroppedCapacity uint64
	DroppedExpired  uint64
	MessagesSent    uint64
	MinAllowedRate  float64
	MaxAllowedRate  float64
	SumAllowedRate  float64
}

// Stats aggregates counters across the cluster.
func (c *Cluster) Stats() ClusterStats {
	var st ClusterStats
	first := true
	for _, r := range c.runners {
		snap := r.Snapshot()
		st.Published += snap.Adaptive.Published
		st.Delivered += snap.Gossip.Delivered
		st.DroppedCapacity += snap.Gossip.DroppedCapacity
		st.DroppedExpired += snap.Gossip.DroppedExpired
		st.MessagesSent += snap.Gossip.MessagesSent
		st.SumAllowedRate += snap.AllowedRate
		if first || snap.AllowedRate < st.MinAllowedRate {
			st.MinAllowedRate = snap.AllowedRate
		}
		if first || snap.AllowedRate > st.MaxAllowedRate {
			st.MaxAllowedRate = snap.AllowedRate
		}
		first = false
	}
	return st
}

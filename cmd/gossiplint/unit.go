package main

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"

	"adaptivegossip/internal/lint"
)

// vetConfig mirrors the JSON cmd/go writes to <objdir>/vet.cfg for each
// compilation unit (cmd/go/internal/work.vetConfig). Only the fields
// gossiplint consumes are declared.
type vetConfig struct {
	ID         string
	Compiler   string
	Dir        string
	ImportPath string   // canonical package path
	GoFiles    []string // absolute paths to the unit's Go sources

	ImportMap   map[string]string // import path in source -> package path
	PackageFile map[string]string // package path -> export data file
	PackageVetx map[string]string // package path -> fact file from dep units
	VetxOnly    bool              // compute facts only; don't report
	VetxOutput  string            // write this unit's facts here

	SucceedOnTypecheckFailure bool
}

// vetxFacts is gossiplint's fact currency between compilation units:
// the FullNames of //gossip:scratch producers visible so far. The file
// written to VetxOutput is read back via PackageVetx when dependent
// units are vetted.
type vetxFacts struct {
	ScratchProducers []string
}

// runUnit analyzes one compilation unit as directed by cmd/go.
func runUnit(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Print(err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		log.Printf("parsing %s: %v", cfgFile, err)
		return 1
	}

	fset := token.NewFileSet()
	imp := unitImporter{importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})}

	pkg, err := lint.CheckFiles(fset, imp, cfg.ImportPath, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			// cmd/go asked us to stay quiet: the compiler will report
			// the type error itself with better positions (#18395).
			writeFacts(cfg, nil)
			return 0
		}
		log.Print(err)
		return 1
	}

	// Facts in: scratch producers exported by dependency units.
	inherited := map[string]bool{}
	for _, file := range cfg.PackageVetx {
		raw, err := os.ReadFile(file)
		if err != nil {
			continue
		}
		var facts vetxFacts
		if json.Unmarshal(raw, &facts) != nil {
			continue
		}
		for _, name := range facts.ScratchProducers {
			inherited[name] = true
		}
	}

	// Facts out: this unit's own producers plus everything inherited,
	// so identities propagate transitively even though cmd/go only
	// hands us direct dependencies' fact files.
	union := make(map[string]bool, len(inherited))
	for name := range inherited {
		union[name] = true
	}
	for _, name := range lint.LocalProducerNames(pkg) {
		union[name] = true
	}
	out := vetxFacts{ScratchProducers: make([]string, 0, len(union))}
	for name := range union {
		out.ScratchProducers = append(out.ScratchProducers, name)
	}
	writeFacts(cfg, &out)

	if cfg.VetxOnly {
		return 0
	}

	diags, err := lint.RunPackage(pkg, lint.All(), inherited)
	if err != nil {
		log.Print(err)
		return 1
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s (%s)\n", pos.Filename, pos.Line, pos.Column, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// writeFacts persists the unit's fact file; cmd/go caches it and feeds
// it to dependent units. Best-effort: a missing fact file only costs
// cross-unit precision, never correctness of the current unit.
func writeFacts(cfg vetConfig, facts *vetxFacts) {
	if cfg.VetxOutput == "" {
		return
	}
	if facts == nil {
		facts = &vetxFacts{}
	}
	data, err := json.Marshal(facts)
	if err != nil {
		return
	}
	_ = os.WriteFile(cfg.VetxOutput, data, 0o666)
}

// unitImporter resolves "unsafe" before delegating to the export-data
// importer, which expects a lookup hit for every other path.
type unitImporter struct {
	gc types.Importer
}

func (ui unitImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return ui.gc.Import(path)
}

package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// binPath is the gossiplint binary built once for the whole test run.
var binPath string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "gossiplint-test")
	if err != nil {
		panic(err)
	}
	binPath = filepath.Join(dir, "gossiplint")
	out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput()
	if err != nil {
		os.RemoveAll(dir)
		panic("building gossiplint: " + err.Error() + "\n" + string(out))
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// writeModule materializes a throwaway module from path->content pairs
// and returns its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, content := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func exitCode(t *testing.T, err error) int {
	t.Helper()
	if err == nil {
		return 0
	}
	var ee *exec.ExitError
	if !asExitError(err, &ee) {
		t.Fatalf("running gossiplint: %v", err)
	}
	return ee.ExitCode()
}

func asExitError(err error, target **exec.ExitError) bool {
	ee, ok := err.(*exec.ExitError)
	if ok {
		*target = ee
	}
	return ok
}

func TestVersionHandshake(t *testing.T) {
	out, err := exec.Command(binPath, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	line := strings.TrimSpace(string(out))
	// cmd/go's buildID parser needs "<name> version devel ... buildID=<hex>".
	fields := strings.Fields(line)
	if len(fields) < 3 || fields[1] != "version" || !strings.HasPrefix(fields[len(fields)-1], "buildID=") {
		t.Fatalf("-V=full output %q does not satisfy cmd/go's parser", line)
	}
}

func TestFlagsQuery(t *testing.T) {
	out, err := exec.Command(binPath, "-flags").Output()
	if err != nil {
		t.Fatalf("-flags: %v", err)
	}
	if got := strings.TrimSpace(string(out)); got != "[]" {
		t.Fatalf("-flags = %q, want []", got)
	}
}

func TestStandaloneFindsSeededViolation(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module vetfixture\n\ngo 1.24\n",
		"hot.go": `package vetfixture

//gossip:hotpath
func Tick(buf []int) []int {
	spill := make([]int, 8)
	return append(buf, spill...)
}
`,
	})
	cmd := exec.Command(binPath, "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if code := exitCode(t, err); code != 2 {
		t.Fatalf("exit code = %d, want 2; output:\n%s", code, out)
	}
	if !strings.Contains(string(out), "heap allocation: make") || !strings.Contains(string(out), "(hotpathalloc)") {
		t.Fatalf("missing hotpathalloc diagnostic in output:\n%s", out)
	}
	if !strings.Contains(string(out), "hot.go:5:") {
		t.Fatalf("diagnostic not positioned at hot.go:5:\n%s", out)
	}
}

func TestStandaloneCleanModule(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module vetfixture\n\ngo 1.24\n",
		"ok.go": `package vetfixture

//gossip:hotpath
func Tick(buf []int, n int) []int {
	buf = append(buf, n)
	return buf
}
`,
	})
	cmd := exec.Command(binPath, "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if code := exitCode(t, err); code != 0 {
		t.Fatalf("exit code = %d, want 0; output:\n%s", code, out)
	}
	if len(strings.TrimSpace(string(out))) != 0 {
		t.Fatalf("expected no output on a clean module, got:\n%s", out)
	}
}

// TestGoVetVettool drives the real cmd/go vet driver end to end: the
// -V=full handshake, the -flags query, per-unit .cfg invocations, and
// fact propagation (the //gossip:scratch producer lives in a dependency
// package of the one with the violation, so the finding only appears if
// producer identities flow between compilation units via .vetx files).
func TestGoVetVettool(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module vetfixture\n\ngo 1.24\n",
		"inner/inner.go": `package inner

type Message struct{ Events []int }

func (m *Message) CopyForSend() *Message {
	c := *m
	c.Events = append([]int(nil), m.Events...)
	return &c
}

type Node struct{ scratch Message }

// Tick hands out per-round scratch.
//
//gossip:scratch
func (n *Node) Tick() *Message { return &n.scratch }
`,
		"drive.go": `package vetfixture

import "vetfixture/inner"

var last *inner.Message

func Drive(n *inner.Node) {
	last = n.Tick()
}

func DriveSafe(n *inner.Node) {
	last = n.Tick().CopyForSend()
}
`,
	})
	cmd := exec.Command("go", "vet", "-vettool="+binPath, "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool succeeded, want scratchretain failure; output:\n%s", out)
	}
	text := string(out)
	if !strings.Contains(text, "scratch value stored in package variable last") || !strings.Contains(text, "(scratchretain)") {
		t.Fatalf("missing cross-unit scratchretain diagnostic:\n%s", text)
	}
	if !strings.Contains(text, "drive.go:8:") {
		t.Fatalf("diagnostic not positioned at drive.go:8 (the retaining store):\n%s", text)
	}
	if strings.Contains(text, "drive.go:12:") {
		t.Fatalf("CopyForSend store was wrongly flagged:\n%s", text)
	}
}

// Command gossiplint runs the adaptivegossip static-analysis suite
// (internal/lint) over the module: hotpathalloc, scratchretain,
// atomicfield, transportsafe, and the //gossip: directive validator.
//
// Standalone (whole-module, full cross-package precision):
//
//	gossiplint [packages]        # defaults to ./...
//
// As a vet tool (per-compilation-unit, driven by cmd/go):
//
//	go vet -vettool=$(pwd)/bin/gossiplint ./...
//
// In vettool mode the driver hands the tool one compilation unit at a
// time, so cross-package analyses degrade to package-local precision;
// //gossip:scratch producer identities are propagated between units
// through vet's .vetx fact files so scratch-lifetime checks still see
// producers declared in dependencies. CI gates on the standalone mode,
// which sees the whole module at once.
//
// Exit status: 0 clean, 1 usage or internal error, 2 diagnostics found.
package main

import (
	"crypto/sha256"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"adaptivegossip/internal/lint"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gossiplint: ")

	// The cmd/go vet driver speaks a three-verb protocol: a -V=full
	// version handshake (the output's buildID= field keys the build
	// cache), a -flags query describing the tool's own flags, and then
	// one invocation per compilation unit with a JSON config file as
	// the sole argument.
	args := os.Args[1:]
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full" || args[0] == "--V=full":
			printVersion()
			return
		case args[0] == "-flags" || args[0] == "--flags":
			fmt.Println("[]") // gossiplint takes no analyzer flags
			return
		case strings.HasSuffix(args[0], ".cfg"):
			os.Exit(runUnit(args[0]))
		}
	}
	os.Exit(runStandalone(args))
}

// printVersion answers -V=full in the format cmd/go's buildID parser
// accepts for development tools: the last field carries a content hash
// of this executable, so rebuilding the linter invalidates cached vet
// results.
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gossiplint version devel comments-go-here buildID=%02x\n", h.Sum(nil))
}

// runStandalone loads the whole module rooted at the working directory
// and applies every analyzer with full cross-package visibility.
func runStandalone(patterns []string) int {
	dir, err := os.Getwd()
	if err != nil {
		log.Print(err)
		return 1
	}
	m, err := lint.LoadModule(dir, patterns...)
	if err != nil {
		log.Print(err)
		return 1
	}
	diags, err := lint.Run(m, lint.All())
	if err != nil {
		log.Print(err)
		return 1
	}
	for _, d := range diags {
		pos := m.Fset.Position(d.Pos)
		name := pos.Filename
		if rel, err := filepath.Rel(dir, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
		fmt.Printf("%s:%d:%d: %s (%s)\n", name, pos.Line, pos.Column, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// Command gossipsim regenerates the evaluation figures of "Adaptive
// Gossip-Based Broadcast" (DSN 2003). Each figure prints as an aligned
// text table shaped like the paper's plot.
//
// Usage:
//
//	gossipsim -figure all            # everything (minutes)
//	gossipsim -figure 2              # reliability vs input rate
//	gossipsim -figure 4              # max input rate vs buffer (+T1 critical age)
//	gossipsim -figure 6              # offered/allowed/maximum rates
//	gossipsim -figure 7              # input/output rates and dropped ages
//	gossipsim -figure 8              # % receivers and atomicity
//	gossipsim -figure 9              # dynamic buffers (simulation)
//	gossipsim -figure 9rt            # dynamic buffers (real-time prototype)
//	gossipsim -figure ablations      # A1–A4 design-choice studies
//	gossipsim -figure recovery       # delivery vs loss, anti-entropy off/on
//	gossipsim -figure churn          # delivery and view accuracy vs churn
//	                                 # rate, failure detection off/on
//	gossipsim -figure wirecost       # bytes and allocs per round vs fanout
//	gossipsim -figure healthdigest   # health-digest convergence vs group
//	                                 # size and digests per message
//	gossipsim -figure scale          # n=1k/5k/10k uniform vs proximity-
//	                                 # biased sampling over WAN regions
//	gossipsim -figure 2 -fast        # reduced duration for a quick look
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"adaptivegossip/internal/experiments"
	"adaptivegossip/internal/health"
	"adaptivegossip/internal/observe"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gossipsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gossipsim", flag.ContinueOnError)
	var (
		figure   = fs.String("figure", "all", "2|4|6|7|8|9|9rt|t1|ablations|recovery|churn|wirecost|healthdigest|scale|all")
		seed     = fs.Int64("seed", 1, "base random seed")
		seeds    = fs.Int("seeds", 1, "seeds to average per data point")
		n        = fs.Int("n", 60, "group size")
		fast     = fs.Bool("fast", false, "shorter windows (quick look, noisier)")
		scale    = fs.Float64("rtscale", 100, "real-time speedup for -figure 9rt")
		plots    = fs.Bool("plot", false, "draw terminal plots after each table")
		parallel = fs.Int("parallel", runtime.GOMAXPROCS(0),
			"max simulation runs in flight (1 = sequential; output is identical at any value)")
		cpuprofile = fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a pprof heap profile to this file on exit")
		metricsOut = fs.String("metrics-out", "",
			"write per-figure delivery-latency and hop distributions (percentiles + buckets) to this JSON file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	drawPlots = *plots
	collected = nil
	experiments.SetParallelism(*parallel)
	if *metricsOut != "" {
		defer func() {
			if err := writeMetrics(*metricsOut); err != nil {
				fmt.Fprintln(os.Stderr, "gossipsim: metrics-out:", err)
			}
		}()
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		path := *memprofile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gossipsim: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile is sharp
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "gossipsim: memprofile:", err)
			}
		}()
	}

	base := experiments.DefaultConfig()
	base.N = *n
	base.Seed = *seed
	if *fast {
		base.Warmup = 100 * time.Second
		base.Duration = 200 * time.Second
	}

	buffers := []int{30, 45, 60, 75, 90, 105, 120, 135, 150, 165, 180}
	if *fast {
		buffers = []int{30, 60, 90, 120, 150, 180}
	}

	started := time.Now()
	switch *figure {
	case "2":
		return figure2(base, *seeds)
	case "4", "t1":
		_, err := figure4(base, buffers, *seeds)
		return err
	case "6":
		return figure6(base, buffers, *seeds)
	case "7", "8":
		return figures78(base, buffers, *seeds, *figure)
	case "9":
		return figure9(base, buffers, *seeds)
	case "9rt":
		return figure9rt(base, buffers, *seeds, *scale)
	case "ablations":
		return ablations(base, *seeds)
	case "recovery":
		return recoverySweep(base, *seeds)
	case "churn":
		return churnSweep(base, *seeds)
	case "wirecost":
		return wirecostSweep(*fast)
	case "healthdigest":
		return healthdigestSweep(*fast, *seed)
	case "scale":
		return scaleSweep(*fast, *seed)
	case "all":
		if err := figure2(base, *seeds); err != nil {
			return err
		}
		fig4, err := figure4(base, buffers, *seeds)
		if err != nil {
			return err
		}
		if err := figure6WithRows(base, buffers, fig4, *seeds); err != nil {
			return err
		}
		if err := figures78(base, buffers, *seeds, "7+8"); err != nil {
			return err
		}
		if err := figure9WithFit(base, fig4); err != nil {
			return err
		}
		if err := figure9rtWithFit(base, fig4, *scale); err != nil {
			return err
		}
		if err := ablations(base, *seeds); err != nil {
			return err
		}
		if err := recoverySweep(base, *seeds); err != nil {
			return err
		}
		if err := churnSweep(base, *seeds); err != nil {
			return err
		}
		if err := wirecostSweep(*fast); err != nil {
			return err
		}
		fmt.Printf("\n# total wall time: %v\n", time.Since(started).Round(time.Second))
		return nil
	default:
		return fmt.Errorf("unknown figure %q", *figure)
	}
}

// drawPlots adds terminal plots after each table (-plot).
var drawPlots bool

// metricsEntry is one figure series' distribution digest in the
// -metrics-out JSON file. Latency values are microseconds.
type metricsEntry struct {
	Figure  string                          `json:"figure"`
	Series  string                          `json:"series,omitempty"`
	Latency experiments.DistributionSummary `json:"delivery_latency_us"`
	Hops    experiments.DistributionSummary `json:"hops"`
}

// collected accumulates -metrics-out entries as figures run.
var collected []metricsEntry

func recordMetrics(figure, series string, latency, hops observe.HistogramSnapshot) {
	if latency.Count == 0 && hops.Count == 0 {
		return
	}
	collected = append(collected, metricsEntry{
		Figure:  figure,
		Series:  series,
		Latency: experiments.Summarize(latency),
		Hops:    experiments.Summarize(hops),
	})
}

func writeMetrics(path string) error {
	data, err := json.MarshalIndent(collected, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func maybePlot(draw func() error) error {
	if !drawPlots {
		return nil
	}
	if err := draw(); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

func figure2(base experiments.Config, seeds int) error {
	rows, err := experiments.RunFigure2(base, []float64{10, 15, 20, 25, 30, 35, 40, 45, 50, 55, 60}, seeds)
	if err != nil {
		return err
	}
	lat, hops := experiments.Figure2Distributions(rows)
	recordMetrics("2", "lpbcast", lat, hops)
	experiments.RenderFigure2(os.Stdout, rows)
	fmt.Println()
	return maybePlot(func() error { return experiments.PlotFigure2(os.Stdout, rows) })
}

func figure4(base experiments.Config, buffers []int, seeds int) ([]experiments.Figure4Row, error) {
	rows, err := experiments.RunFigure4(base, buffers, 95, seeds)
	if err != nil {
		return nil, err
	}
	experiments.RenderFigure4(os.Stdout, rows)
	fmt.Println()
	if err := maybePlot(func() error { return experiments.PlotFigure4(os.Stdout, rows) }); err != nil {
		return nil, err
	}
	return rows, nil
}

func figure6(base experiments.Config, buffers []int, seeds int) error {
	fig4, err := experiments.RunFigure4(base, buffers, 95, seeds)
	if err != nil {
		return err
	}
	return figure6WithRows(base, buffers, fig4, seeds)
}

func figure6WithRows(base experiments.Config, buffers []int, fig4 []experiments.Figure4Row, seeds int) error {
	rows, err := experiments.RunFigure6(base, buffers, fig4, seeds)
	if err != nil {
		return err
	}
	lat, hops := experiments.Figure6Distributions(rows)
	recordMetrics("6", "adaptive", lat, hops)
	experiments.RenderFigure6(os.Stdout, rows)
	fmt.Println()
	return maybePlot(func() error { return experiments.PlotFigure6(os.Stdout, rows) })
}

func figures78(base experiments.Config, buffers []int, seeds int, which string) error {
	rows7, rows8, err := experiments.RunFigures78(base, buffers, seeds)
	if err != nil {
		return err
	}
	lpLat, lpHops, adLat, adHops := experiments.Figure7Distributions(rows7)
	recordMetrics("7+8", "lpbcast", lpLat, lpHops)
	recordMetrics("7+8", "adaptive", adLat, adHops)
	if which == "7" || which == "7+8" {
		experiments.RenderFigure7(os.Stdout, rows7)
		fmt.Println()
	}
	if which == "8" || which == "7+8" {
		experiments.RenderFigure8(os.Stdout, rows8)
		fmt.Println()
		if err := maybePlot(func() error { return experiments.PlotFigure8(os.Stdout, rows8) }); err != nil {
			return err
		}
	}
	return nil
}

func figure9(base experiments.Config, buffers []int, seeds int) error {
	fig4, err := experiments.RunFigure4(base, []int{45, 60, 90}, 95, seeds)
	if err != nil {
		return err
	}
	return figure9WithFit(base, fig4)
}

func figure9WithFit(base experiments.Config, fig4 []experiments.Figure4Row) error {
	cfg := experiments.DefaultFigure9Config(base)
	cfg.IdealFor = experiments.Figure4Fit(fig4)
	res, err := experiments.RunFigure9Sim(cfg)
	if err != nil {
		return err
	}
	recordMetrics("9", "adaptive", res.Adaptive.Latency, res.Adaptive.Hops)
	recordMetrics("9", "lpbcast", res.Baseline.Latency, res.Baseline.Hops)
	experiments.RenderFigure9(os.Stdout, res)
	fmt.Println()
	return maybePlot(func() error { return experiments.PlotFigure9(os.Stdout, res) })
}

func figure9rt(base experiments.Config, buffers []int, seeds int, scale float64) error {
	fig4, err := experiments.RunFigure4(base, []int{45, 60, 90}, 95, seeds)
	if err != nil {
		return err
	}
	return figure9rtWithFit(base, fig4, scale)
}

func figure9rtWithFit(base experiments.Config, fig4 []experiments.Figure4Row, scale float64) error {
	cfg := experiments.DefaultFigure9Config(base)
	cfg.IdealFor = experiments.Figure4Fit(fig4)
	fmt.Printf("# Figure 9 (real-time prototype run, %d goroutine nodes, scale ×%.0f)\n", base.N, scale)
	res, err := experiments.RunFigure9Runtime(cfg, scale)
	if err != nil {
		return err
	}
	experiments.RenderFigure9(os.Stdout, res)
	fmt.Println()
	return nil
}

func recoverySweep(base experiments.Config, seeds int) error {
	losses := []float64{0, 0.05, 0.10, 0.20, 0.30}
	rows, err := experiments.RunRecovery(experiments.DefaultRecoveryConfig(base), losses, seeds)
	if err != nil {
		return err
	}
	experiments.RenderRecovery(os.Stdout, rows)
	fmt.Println()
	return nil
}

func churnSweep(base experiments.Config, seeds int) error {
	rates := []float64{1, 2, 4, 8}
	rows, err := experiments.RunChurn(experiments.DefaultChurnConfig(base), rates, seeds)
	if err != nil {
		return err
	}
	experiments.RenderChurn(os.Stdout, rows)
	fmt.Println()
	return nil
}

func wirecostSweep(fast bool) error {
	cfg := experiments.DefaultWirecostConfig()
	if fast {
		cfg.Rounds = 50
	}
	rows, err := experiments.RunWirecost(cfg)
	if err != nil {
		return err
	}
	experiments.RenderWirecost(os.Stdout, cfg, rows)
	fmt.Println()
	return nil
}

// healthdigestSweep measures how fast gossip-disseminated health
// digests converge to full cluster coverage (every node holding a
// digest of every other), across group sizes and piggyback budgets.
func healthdigestSweep(fast bool, seed int64) error {
	type point struct {
		n, dpm int
	}
	grid := []point{
		{60, 4}, {60, 16}, {60, 64},
		{250, 4}, {250, 16}, {250, 64},
		{1000, 16}, {1000, 64},
	}
	maxRounds := 300
	if fast {
		grid = []point{{60, 2}, {60, 4}, {60, 16}}
		maxRounds = 200
	}
	const fanout = 4
	fmt.Println("Health-digest convergence: rounds until every node holds a digest")
	fmt.Printf("of every member (fanout %d, push gossip, one self digest plus\n", fanout)
	fmt.Println("relayed digests per message up to the budget).")
	fmt.Println()
	fmt.Printf("%8s %12s %14s %12s %12s\n", "nodes", "digests/msg", "rounds-full", "mean@5", "mean@10")
	for _, p := range grid {
		res, err := health.RunConvergence(p.n, fanout, p.dpm, maxRounds, seed)
		if err != nil {
			return err
		}
		coverageAt := func(round int) string {
			for _, tr := range res.Trace {
				if tr.Round == round {
					return fmt.Sprintf("%.3f", tr.MeanCoverage)
				}
			}
			return "1.000" // converged (trace stops) before this round
		}
		roundsFull := fmt.Sprintf("%d", res.RoundsToFull)
		if res.RoundsToFull == 0 {
			roundsFull = fmt.Sprintf(">%d", maxRounds)
		}
		fmt.Printf("%8d %12d %14s %12s %12s\n",
			p.n, p.dpm, roundsFull, coverageAt(5), coverageAt(10))
	}
	fmt.Println()
	return nil
}

// scaleSweep runs the large-n scale figure: 1k/5k/10k-node groups over
// WAN regions, uniform vs proximity-biased peer sampling. -fast trims
// the grid to {1k, 10k} and shortens the measurement window for the CI
// smoke budget.
func scaleSweep(fast bool, seed int64) error {
	cfg := experiments.DefaultScaleConfig()
	cfg.Seed = seed
	if fast {
		cfg.Sizes = []int{1000, 10000}
		cfg.Rounds = 15
	}
	rows, err := experiments.RunScale(cfg)
	if err != nil {
		return err
	}
	experiments.RenderScale(os.Stdout, cfg, rows)
	fmt.Println()
	return nil
}

func ablations(base experiments.Config, seeds int) error {
	rows, err := experiments.RunAblations(base, seeds)
	if err != nil {
		return err
	}
	experiments.RenderAblations(os.Stdout, rows)
	fmt.Println()
	return nil
}

package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunUnknownFigure(t *testing.T) {
	if err := run([]string{"-figure", "nope"}); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunFigure2SmallGroup(t *testing.T) {
	if testing.Short() {
		t.Skip("several seconds of simulation")
	}
	// A reduced group keeps this a smoke test of the full CLI path.
	if err := run([]string{"-figure", "2", "-n", "16", "-fast"}); err != nil {
		t.Fatalf("figure 2: %v", err)
	}
}

func TestRunParallelAndProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("several seconds of simulation")
	}
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	if err := run([]string{
		"-figure", "2", "-n", "16", "-fast",
		"-parallel", "4",
		"-cpuprofile", cpu, "-memprofile", mem,
	}); err != nil {
		t.Fatalf("figure 2 with profiles: %v", err)
	}
	for _, path := range []string{cpu, mem} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", path)
		}
	}
}

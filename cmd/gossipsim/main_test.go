package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunUnknownFigure(t *testing.T) {
	if err := run([]string{"-figure", "nope"}); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunFigure2SmallGroup(t *testing.T) {
	if testing.Short() {
		t.Skip("several seconds of simulation")
	}
	// A reduced group keeps this a smoke test of the full CLI path.
	if err := run([]string{"-figure", "2", "-n", "16", "-fast"}); err != nil {
		t.Fatalf("figure 2: %v", err)
	}
}

func TestRunMetricsOut(t *testing.T) {
	if testing.Short() {
		t.Skip("several seconds of simulation")
	}
	path := filepath.Join(t.TempDir(), "metrics.json")
	if err := run([]string{"-figure", "2", "-n", "16", "-fast", "-metrics-out", path}); err != nil {
		t.Fatalf("figure 2: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("metrics file not written: %v", err)
	}
	var entries []struct {
		Figure  string `json:"figure"`
		Series  string `json:"series"`
		Latency struct {
			Count   uint64  `json:"count"`
			P50     float64 `json:"p50"`
			P95     float64 `json:"p95"`
			P99     float64 `json:"p99"`
			Buckets []struct {
				Low, High, Count uint64
			} `json:"buckets"`
		} `json:"delivery_latency_us"`
		Hops struct {
			Count uint64  `json:"count"`
			P99   float64 `json:"p99"`
		} `json:"hops"`
	}
	if err := json.Unmarshal(data, &entries); err != nil {
		t.Fatalf("metrics file is not JSON: %v", err)
	}
	if len(entries) != 1 || entries[0].Figure != "2" || entries[0].Series != "lpbcast" {
		t.Fatalf("unexpected entries: %s", data)
	}
	e := entries[0]
	if e.Latency.Count == 0 || e.Hops.Count == 0 {
		t.Fatalf("empty distributions in metrics file: %s", data)
	}
	if len(e.Latency.Buckets) == 0 {
		t.Fatal("latency buckets missing")
	}
	if e.Hops.P99 <= 0 {
		t.Fatalf("hops p99 = %v, want > 0", e.Hops.P99)
	}
}

func TestRunParallelAndProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("several seconds of simulation")
	}
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	if err := run([]string{
		"-figure", "2", "-n", "16", "-fast",
		"-parallel", "4",
		"-cpuprofile", cpu, "-memprofile", mem,
	}); err != nil {
		t.Fatalf("figure 2 with profiles: %v", err)
	}
	for _, path := range []string{cpu, mem} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", path)
		}
	}
}

package main

import "testing"

func TestRunUnknownFigure(t *testing.T) {
	if err := run([]string{"-figure", "nope"}); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunFigure2SmallGroup(t *testing.T) {
	if testing.Short() {
		t.Skip("several seconds of simulation")
	}
	// A reduced group keeps this a smoke test of the full CLI path.
	if err := run([]string{"-figure", "2", "-n", "16", "-fast"}); err != nil {
		t.Fatalf("figure 2: %v", err)
	}
}

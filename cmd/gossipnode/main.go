// Command gossipnode runs one adaptive gossip broadcast node over UDP —
// the per-workstation process of the paper's prototype deployment.
//
// Example (three nodes on one machine):
//
//	gossipnode -id a -bind 127.0.0.1:9001 -peers b=127.0.0.1:9002,c=127.0.0.1:9003 -rate 2
//	gossipnode -id b -bind 127.0.0.1:9002 -peers a=127.0.0.1:9001,c=127.0.0.1:9003
//	gossipnode -id c -bind 127.0.0.1:9003 -peers a=127.0.0.1:9001,b=127.0.0.1:9002
//
// Each node prints a stats line every reporting interval; nodes with
// -rate > 0 publish synthetic messages at that offered rate.
//
// With -top, gossipnode is instead a one-shot cluster inspector: it
// fetches another node's /debug/gossip/cluster view from its debug
// listener and prints it as a table:
//
//	gossipnode -top http://127.0.0.1:6060
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"text/tabwriter"
	"time"

	"adaptivegossip"
	"adaptivegossip/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gossipnode:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gossipnode", flag.ContinueOnError)
	var (
		id       = fs.String("id", "", "node identifier (required)")
		bind     = fs.String("bind", "127.0.0.1:0", "UDP listen address")
		peers    = fs.String("peers", "", "comma-separated name=host:port pairs")
		rate     = fs.Float64("rate", 0, "offered publish rate in msg/s (0 = receive only)")
		payload  = fs.Int("payload", 64, "publish payload size in bytes")
		period   = fs.Duration("period", 5*time.Second, "gossip period T")
		buffer   = fs.Int("buffer", 120, "events buffer capacity")
		adaptive = fs.Bool("adaptive", true, "enable the adaptation mechanism")
		report   = fs.Duration("report", 5*time.Second, "stats reporting interval")
		runFor   = fs.Duration("for", 0, "exit after this duration (0 = run until signal)")
		debug    = fs.String("debug-addr", "", "bind the debug HTTP listener (expvar JSON at /debug/vars, Prometheus at /metrics, pprof at /debug/pprof/) on this address (empty = off)")
		traceSim = fs.Float64("trace-sample", 0, "rumor-lifecycle trace sample rate in [0,1] (served at /debug/gossip/traces; 0 = off)")
		healthOn = fs.Bool("health", true, "disseminate health digests on gossip (cluster view at /debug/gossip/cluster)")
		failure  = fs.Bool("failure", false, "enable the SWIM failure detector (also feeds per-peer RTT telemetry)")
		top      = fs.String("top", "", "one-shot mode: fetch and print another node's /debug/gossip/cluster view from this debug-listener base URL, then exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *top != "" {
		return printClusterTop(os.Stdout, *top)
	}
	if *id == "" {
		return fmt.Errorf("-id is required")
	}

	peerBook := map[string]string{}
	if *peers != "" {
		for _, pair := range strings.Split(*peers, ",") {
			name, addr, ok := strings.Cut(strings.TrimSpace(pair), "=")
			if !ok {
				return fmt.Errorf("bad peer %q, want name=host:port", pair)
			}
			peerBook[name] = addr
		}
	}

	cfg := adaptivegossip.DefaultConfig()
	cfg.Period = *period
	cfg.BufferCapacity = *buffer
	cfg.Adaptive = *adaptive
	if *rate > 0 {
		cfg.Adaptation.InitialRate = *rate
		cfg.Adaptation.MaxRate = 4 * *rate
	}
	cfg.Observability.DebugAddr = *debug
	cfg.Observability.TraceSampleRate = *traceSim
	cfg.Observability.HealthDigests = *healthOn
	cfg.Failure.Enabled = *failure

	tr, err := adaptivegossip.NewUDPTransport(adaptivegossip.WithBind(*bind))
	if err != nil {
		return err
	}
	var delivered atomic.Int64
	node, err := adaptivegossip.NewNode(*id, cfg,
		adaptivegossip.WithTransport(tr),
		adaptivegossip.WithPeers(peerBook),
		adaptivegossip.WithDeliver(func(d adaptivegossip.Delivery) {
			delivered.Add(1)
		}))
	if err != nil {
		// NewNode owns tr from WithTransport on: it is closed on failure.
		return err
	}
	defer node.Close()
	if err := node.Start(context.Background()); err != nil {
		return err
	}
	fmt.Printf("node %s listening on %s, %d peers, adaptive=%v\n",
		node.ID(), node.Addr(), len(peerBook), *adaptive)
	if da := node.DebugAddr(); da != "" {
		fmt.Printf("debug listener on http://%s/debug/vars (also /metrics, /debug/pprof/)\n", da)
	}

	var sender *workload.TimedSender
	if *rate > 0 {
		sender, err = workload.StartTimedSender(workload.SenderConfig{
			Rate:        *rate,
			PayloadSize: *payload,
		}, node.Publish, 1)
		if err != nil {
			return err
		}
		defer sender.Stop()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	var deadline <-chan time.Time
	if *runFor > 0 {
		deadline = time.After(*runFor)
	}
	ticker := time.NewTicker(*report)
	defer ticker.Stop()

	for {
		select {
		case <-stop:
			fmt.Println("signal received, shutting down")
			return nil
		case <-deadline:
			return nil
		case <-ticker.C:
			snap := node.Snapshot()
			wire := tr.Stats()
			line := fmt.Sprintf("delivered=%d buffer=%d/%d sent=%dB recv=%dB",
				delivered.Load(), snap.BufferLen, snap.BufferCap, wire.SentBytes, wire.RecvBytes)
			if *adaptive {
				line += fmt.Sprintf(" allowed=%.2f/s minBuff=%d avgAge=%.2f",
					snap.AllowedRate, snap.MinBuff, snap.AvgAge)
			}
			if sender != nil {
				st := sender.Stats()
				line += fmt.Sprintf(" offered=%d admitted=%d", st.Offered, st.Admitted)
			}
			fmt.Println(line)
		}
	}
}

// printClusterTop fetches base's /debug/gossip/cluster view and renders
// it as a table, one row per member the remote node has a digest for.
func printClusterTop(w io.Writer, base string) error {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	url := strings.TrimRight(base, "/") + "/debug/gossip/cluster"
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	var view []adaptivegossip.MemberHealth
	if err := json.Unmarshal(body, &view); err != nil {
		return fmt.Errorf("decode %s: %w", url, err)
	}
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "NODE\tROUND\tSTALE\tPUB\tDLV\tDROP\tBUF\tSENT\tRECV\tHOPS(avg/p99)")
	for _, m := range view {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d/%d\t%d\t%d\t%.1f/%.0f\n",
			m.Node, m.Round, m.StalenessRounds, m.Published, m.Delivered,
			m.DroppedCapacity+m.DroppedExpired, m.BufferLen, m.BufferCap,
			m.MessagesSent, m.MessagesReceived, m.HopsMean, m.HopsP99)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "%d members\n", len(view))
	return nil
}

package main

import (
	"testing"
	"time"
)

func TestRunRequiresID(t *testing.T) {
	if err := run([]string{"-bind", "127.0.0.1:0"}); err == nil {
		t.Fatal("missing id accepted")
	}
}

func TestRunBadPeerSpec(t *testing.T) {
	if err := run([]string{"-id", "x", "-peers", "no-equals-sign"}); err == nil {
		t.Fatal("bad peer spec accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunNodeForShortWindow(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-id", "solo",
			"-bind", "127.0.0.1:0",
			"-period", "50ms",
			"-report", "100ms",
			"-rate", "10",
			"-for", "400ms",
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("node did not exit at -for deadline")
	}
}

func TestRunNodeWithDebugListener(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-id", "scraped",
			"-bind", "127.0.0.1:0",
			"-debug-addr", "127.0.0.1:0",
			"-trace-sample", "1",
			"-period", "50ms",
			"-report", "100ms",
			"-rate", "10",
			"-for", "400ms",
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("node did not exit at -for deadline")
	}
}

func TestRunNodeBadTraceSample(t *testing.T) {
	if err := run([]string{"-id", "x", "-trace-sample", "2"}); err == nil {
		t.Fatal("out-of-range trace sample rate accepted")
	}
}

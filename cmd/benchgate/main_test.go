package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBaseline = `{
  "benchmarks": {
    "BenchmarkNodeTick": {
      "after": {"ns_per_round": 3364, "bytes_per_round": 2, "allocs_per_round": 0}
    },
    "BenchmarkNodeReceive": {
      "after": {"ns_per_msg": 24398, "bytes_per_msg": 19, "allocs_per_msg": 0}
    }
  }
}`

func writeBaseline(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(sampleBaseline), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseBenchOutput(t *testing.T) {
	out, err := parseBenchOutput(strings.NewReader(`
goos: linux
BenchmarkNodeTick-4        356298     3364 ns/op        2 B/op    0 allocs/op
BenchmarkNodeTick-4        350000     3400 ns/op        2 B/op    0 allocs/op
BenchmarkOther             100        99 ns/op
PASS
`))
	if err != nil {
		t.Fatal(err)
	}
	ticks := out["BenchmarkNodeTick"]
	if len(ticks) != 2 {
		t.Fatalf("NodeTick samples = %d, want 2", len(ticks))
	}
	if ticks[0].NsPerOp != 3364 || !ticks[0].HasAllocs || ticks[0].AllocsPerOp != 0 {
		t.Fatalf("first sample = %+v", ticks[0])
	}
	// Benchmarks without a GOMAXPROCS suffix parse too.
	if got := out["BenchmarkOther"]; len(got) != 1 || got[0].NsPerOp != 99 || got[0].HasAllocs {
		t.Fatalf("BenchmarkOther = %+v", got)
	}
}

func TestLoadBaselines(t *testing.T) {
	bl, err := loadBaselines(writeBaseline(t))
	if err != nil {
		t.Fatal(err)
	}
	tick, ok := bl["BenchmarkNodeTick"]
	if !ok || tick.NsPerOp != 3364 || !tick.HasAllocs || tick.AllocsPerOp != 0 {
		t.Fatalf("NodeTick baseline = %+v ok=%v", tick, ok)
	}
	if _, ok := bl["BenchmarkNodeReceive"]; !ok {
		t.Fatal("NodeReceive baseline missing")
	}
}

func mkSamples(ns []float64, allocs float64) []sample {
	out := make([]sample, 0, len(ns))
	for _, v := range ns {
		out = append(out, sample{NsPerOp: v, AllocsPerOp: allocs, HasAllocs: true})
	}
	return out
}

func TestGatePassesWithinTolerance(t *testing.T) {
	bl := map[string]baseline{"BenchmarkNodeTick": {NsPerOp: 3364, AllocsPerOp: 0, HasAllocs: true}}
	ss := map[string][]sample{
		"BenchmarkNodeTick": mkSamples([]float64{3300, 3400, 3350, 3380, 3320}, 0),
	}
	results, err := gate(bl, ss, 2.0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || !results[0].Pass {
		t.Fatalf("results = %+v", results)
	}
}

func TestGateFailsSignificantRegression(t *testing.T) {
	bl := map[string]baseline{"BenchmarkNodeTick": {NsPerOp: 1000, AllocsPerOp: 0, HasAllocs: true}}
	// 3x the limit with tiny variance: unambiguous regression.
	ss := map[string][]sample{
		"BenchmarkNodeTick": mkSamples([]float64{6000, 6010, 5990, 6005, 5995}, 0),
	}
	results, err := gate(bl, ss, 2.0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Pass {
		t.Fatalf("3x regression passed the gate: %+v", results[0])
	}
}

func TestGateToleratesNoisyNonRegression(t *testing.T) {
	bl := map[string]baseline{"BenchmarkNodeTick": {NsPerOp: 1000, AllocsPerOp: 0, HasAllocs: true}}
	// Mean barely over the 2x limit but the spread is huge: the t-test
	// must not call this significant.
	ss := map[string][]sample{
		"BenchmarkNodeTick": mkSamples([]float64{900, 3200, 1100, 3000, 2100}, 0),
	}
	results, err := gate(bl, ss, 2.0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].Pass {
		t.Fatalf("noisy non-regression failed the gate: %+v", results[0])
	}
}

func TestGateAllocContractIsExact(t *testing.T) {
	bl := map[string]baseline{"BenchmarkNodeTick": {NsPerOp: 3364, AllocsPerOp: 0, HasAllocs: true}}
	// Fast, but one sample allocates: the exact contract fails it.
	ss := map[string][]sample{
		"BenchmarkNodeTick": mkSamples([]float64{100, 100, 100, 100, 100}, 1),
	}
	results, err := gate(bl, ss, 2.0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Pass {
		t.Fatalf("allocating run passed the zero-alloc gate: %+v", results[0])
	}
}

func TestGateRejectsTooFewSamples(t *testing.T) {
	bl := map[string]baseline{"BenchmarkNodeTick": {NsPerOp: 3364}}
	ss := map[string][]sample{"BenchmarkNodeTick": mkSamples([]float64{3300, 3400}, 0)}
	if _, err := gate(bl, ss, 2.0, 5); err == nil {
		t.Fatal("2 samples accepted with min-count 5")
	}
}

func TestGateRejectsEmptyIntersection(t *testing.T) {
	bl := map[string]baseline{"BenchmarkNodeTick": {NsPerOp: 3364}}
	ss := map[string][]sample{"BenchmarkUnrelated": mkSamples([]float64{1}, 0)}
	if _, err := gate(bl, ss, 2.0, 1); err == nil {
		t.Fatal("gate passed with no gated benchmarks in the input")
	}
}

func TestRunEndToEnd(t *testing.T) {
	path := writeBaseline(t)
	input := `
BenchmarkNodeTick-4     356298   3364 ns/op   2 B/op   0 allocs/op
BenchmarkNodeTick-4     356298   3370 ns/op   2 B/op   0 allocs/op
BenchmarkNodeTick-4     356298   3350 ns/op   2 B/op   0 allocs/op
BenchmarkNodeTick-4     356298   3390 ns/op   2 B/op   0 allocs/op
BenchmarkNodeTick-4     356298   3360 ns/op   2 B/op   0 allocs/op
`
	var out strings.Builder
	code, err := run([]string{"-baseline", path}, strings.NewReader(input), &out)
	if err != nil || code != 0 {
		t.Fatalf("run = %d, %v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "ok") {
		t.Fatalf("output: %s", out.String())
	}

	// A regressed input exits 1.
	regressed := strings.ReplaceAll(input, "33", "93")
	regressed = strings.ReplaceAll(regressed, "0 allocs/op", "0 allocs/op")
	out.Reset()
	code, err = run([]string{"-baseline", path}, strings.NewReader(regressed), &out)
	if err != nil || code != 1 {
		t.Fatalf("regressed run = %d, %v\n%s", code, err, out.String())
	}
}

// Command benchgate is the CI perf-regression gate: it reads `go test
// -bench` output (run with -count >= the sample floor), aggregates the
// per-benchmark samples, and compares them against the checked-in
// baseline (BENCH_5.json). A benchmark fails the gate when
//
//   - its mean ns/op exceeds baseline × -tolerance AND the excess is
//     statistically significant (one-sided one-sample t-test at the 5%
//     level across the samples), or
//   - the baseline promises zero allocs/op and any sample allocates —
//     the zero-allocation contracts are exact, not statistical.
//
// Usage:
//
//	go test -run '^$' -bench 'NodeTick$|NodeReceive$' -count=6 \
//	    -benchtime 1000x ./internal/gossip/ | benchgate -baseline BENCH_5.json
//
// benchgate exits 0 when every gated benchmark present in the input
// passes, 1 on regression, 2 on usage errors (unreadable baseline, too
// few samples, no gated benchmarks in the input).
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	code, err := run(os.Args[1:], os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
	}
	os.Exit(code)
}

func run(args []string, stdin io.Reader, stdout io.Writer) (int, error) {
	var (
		baselinePath = "BENCH_5.json"
		inputPath    = ""
		tolerance    = 2.0
		minCount     = 5
	)
	for i := 0; i < len(args); i++ {
		flagArg := func() (string, error) {
			if i+1 >= len(args) {
				return "", fmt.Errorf("%s needs a value", args[i])
			}
			i++
			return args[i], nil
		}
		var err error
		switch args[i] {
		case "-baseline":
			baselinePath, err = flagArg()
		case "-input":
			inputPath, err = flagArg()
		case "-tolerance":
			var v string
			if v, err = flagArg(); err == nil {
				tolerance, err = strconv.ParseFloat(v, 64)
			}
		case "-min-count":
			var v string
			if v, err = flagArg(); err == nil {
				minCount, err = strconv.Atoi(v)
			}
		default:
			err = fmt.Errorf("unknown flag %s", args[i])
		}
		if err != nil {
			return 2, err
		}
	}
	if tolerance < 1 {
		return 2, fmt.Errorf("tolerance %v must be >= 1", tolerance)
	}
	if minCount < 2 {
		return 2, fmt.Errorf("min-count %d must be >= 2 for a variance estimate", minCount)
	}

	baselines, err := loadBaselines(baselinePath)
	if err != nil {
		return 2, err
	}
	in := stdin
	if inputPath != "" {
		f, err := os.Open(inputPath)
		if err != nil {
			return 2, err
		}
		defer f.Close()
		in = f
	}
	samples, err := parseBenchOutput(in)
	if err != nil {
		return 2, err
	}

	results, err := gate(baselines, samples, tolerance, minCount)
	if err != nil {
		return 2, err
	}
	failed := false
	for _, r := range results {
		fmt.Fprintln(stdout, r.String())
		if !r.Pass {
			failed = true
		}
	}
	if failed {
		return 1, nil
	}
	return 0, nil
}

// baseline is one benchmark's gated reference numbers.
type baseline struct {
	NsPerOp     float64
	AllocsPerOp float64
	HasAllocs   bool
}

// loadBaselines extracts the "after" numbers of every benchmark in the
// BENCH_5.json baseline file. The per-benchmark metric keys differ
// (ns_per_round, ns_per_msg, ns_per_insert, ...), so keys are matched
// by prefix.
func loadBaselines(path string) (map[string]baseline, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc struct {
		Benchmarks map[string]struct {
			After map[string]float64 `json:"after"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	out := make(map[string]baseline, len(doc.Benchmarks))
	for name, b := range doc.Benchmarks {
		var bl baseline
		found := false
		for key, v := range b.After {
			switch {
			case strings.HasPrefix(key, "ns_per"):
				bl.NsPerOp = v
				found = true
			case strings.HasPrefix(key, "allocs_per"):
				bl.AllocsPerOp = v
				bl.HasAllocs = true
			}
		}
		if found {
			out[name] = bl
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s holds no usable baselines", path)
	}
	return out, nil
}

// sample is one benchmark line's measurements.
type sample struct {
	NsPerOp     float64
	AllocsPerOp float64
	HasAllocs   bool
}

// parseBenchOutput reads `go test -bench` text output and groups the
// samples per benchmark base name (the -N GOMAXPROCS suffix stripped),
// in input order.
func parseBenchOutput(r io.Reader) (map[string][]sample, error) {
	out := make(map[string][]sample)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var s sample
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				s.NsPerOp = v
				ok = true
			case "allocs/op":
				s.AllocsPerOp = v
				s.HasAllocs = true
			}
		}
		if ok {
			out[name] = append(out[name], s)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// result is one benchmark's gate verdict.
type result struct {
	Name      string
	Pass      bool
	Mean      float64
	Stddev    float64
	Count     int
	Threshold float64
	TStat     float64
	Reason    string
}

func (r result) String() string {
	verdict := "ok  "
	if !r.Pass {
		verdict = "FAIL"
	}
	return fmt.Sprintf("%s %-24s mean %.1f ns/op (±%.1f, n=%d) vs limit %.1f — %s",
		verdict, r.Name, r.Mean, r.Stddev, r.Count, r.Threshold, r.Reason)
}

// tCrit is the one-sided Student-t 95% critical value by degrees of
// freedom; beyond the table the normal approximation is close enough.
func tCrit(df int) float64 {
	table := map[int]float64{
		1: 6.314, 2: 2.920, 3: 2.353, 4: 2.132, 5: 2.015,
		6: 1.943, 7: 1.895, 8: 1.860, 9: 1.833, 10: 1.812,
		11: 1.796, 12: 1.782, 13: 1.771, 14: 1.761, 15: 1.753,
	}
	if v, ok := table[df]; ok {
		return v
	}
	if df <= 0 {
		return math.Inf(1)
	}
	return 1.645
}

// gate compares every sampled benchmark that has a baseline. It
// requires minCount samples per gated benchmark and reports an error
// when the input contains no gated benchmark at all (an empty gate
// passing silently would hide a broken CI pipeline).
func gate(baselines map[string]baseline, samples map[string][]sample, tolerance float64, minCount int) ([]result, error) {
	names := make([]string, 0, len(samples))
	for name := range samples {
		if _, ok := baselines[name]; ok {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("input contains no benchmark with a baseline")
	}
	sort.Strings(names)
	var out []result
	for _, name := range names {
		bl := baselines[name]
		ss := samples[name]
		if len(ss) < minCount {
			return nil, fmt.Errorf("%s: %d samples, need >= %d (-count)", name, len(ss), minCount)
		}
		var mean float64
		for _, s := range ss {
			mean += s.NsPerOp
		}
		mean /= float64(len(ss))
		var varsum float64
		for _, s := range ss {
			d := s.NsPerOp - mean
			varsum += d * d
		}
		stddev := math.Sqrt(varsum / float64(len(ss)-1))
		r := result{
			Name:      name,
			Mean:      mean,
			Stddev:    stddev,
			Count:     len(ss),
			Threshold: bl.NsPerOp * tolerance,
		}

		// The alloc contract is exact: a zero-alloc baseline admits no
		// allocating sample at all.
		allocFailed := false
		if bl.HasAllocs && bl.AllocsPerOp == 0 {
			for _, s := range ss {
				if s.HasAllocs && s.AllocsPerOp > 0 {
					allocFailed = true
					r.Reason = fmt.Sprintf("allocs/op %.0f, contract is 0", s.AllocsPerOp)
					break
				}
			}
		}
		switch {
		case allocFailed:
			r.Pass = false
		case mean <= r.Threshold:
			r.Pass = true
			r.Reason = "within limit"
		default:
			// Mean over the limit: significant only if the t statistic
			// clears the one-sided critical value.
			if stddev == 0 {
				r.TStat = math.Inf(1)
			} else {
				r.TStat = (mean - r.Threshold) / (stddev / math.Sqrt(float64(len(ss))))
			}
			if r.TStat > tCrit(len(ss)-1) {
				r.Pass = false
				r.Reason = fmt.Sprintf("regression: t=%.2f > %.2f", r.TStat, tCrit(len(ss)-1))
			} else {
				r.Pass = true
				r.Reason = fmt.Sprintf("over limit but not significant (t=%.2f)", r.TStat)
			}
		}
		out = append(out, r)
	}
	return out, nil
}

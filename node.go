package adaptivegossip

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"adaptivegossip/internal/core"
	"adaptivegossip/internal/gossip"
	"adaptivegossip/internal/membership"
	"adaptivegossip/internal/runtime"
)

// Node is a single broadcast group member — the deployment shape of the
// paper's prototype (one process per workstation). By default it
// gossips over a UDP fabric; plug any Transport with WithTransport.
// Create with NewNode, launch with Start, tear down with Close.
type Node struct {
	id     NodeID
	fabric Transport
	ep     Endpoint
	reg    *membership.Registry
	runner *runtime.Runner
	hub    *streamHub
	obs    *groupObservability

	mu        sync.Mutex
	started   bool
	epStarted bool
	closed    bool
	done      chan struct{}
}

// NewNode builds a group member named id with the shared option set
// (WithTransport, WithPeers, WithSeed, WithDeliver, WithOnMemberChange).
// Without WithTransport it binds a UDP fabric on an ephemeral loopback
// port; pass NewUDPTransport(WithBind(...)) for a production listen
// address.
func NewNode(id string, cfg Config, opts ...Option) (*Node, error) {
	o, oerr := applyOptions(facadeNode, groupOptions{}, opts)
	// Any failure from here on closes a handed-over transport: the
	// group owns it from the moment WithTransport is applied.
	var obs *groupObservability
	fail := func(err error) (*Node, error) {
		if o.fabric != nil {
			o.fabric.Close()
		}
		if obs != nil {
			obs.close()
		}
		return nil, err
	}
	if oerr != nil {
		return fail(oerr)
	}
	if id == "" {
		return fail(fmt.Errorf("adaptivegossip: node id is required"))
	}
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return fail(err)
	}
	seed := o.seed
	if seed == 0 {
		for _, b := range []byte(id) {
			seed = seed*131 + int64(b)
		}
		seed++
	}

	if o.fabric == nil {
		fabric, err := NewUDPTransport(WithTransportSeed(seed))
		if err != nil {
			return fail(err)
		}
		o.fabric = fabric
	}
	fabric := o.fabric
	if err := applyTransportConfig(fabric, cfg.Transport); err != nil {
		return fail(err)
	}
	ep, err := fabric.Endpoint(NodeID(id))
	if err != nil {
		return fail(err)
	}

	members := []NodeID{NodeID(id)}
	if len(o.peers) > 0 {
		registrar, ok := fabric.(PeerRegistrar)
		if !ok {
			return fail(fmt.Errorf("adaptivegossip: WithPeers needs a transport with an address book (PeerRegistrar)"))
		}
		for peer, addr := range o.peers {
			if err := registrar.Register(NodeID(peer), addr); err != nil {
				return fail(err)
			}
			members = append(members, NodeID(peer))
		}
	}
	reg := membership.NewRegistry(members...)

	n := &Node{
		id:     NodeID(id),
		fabric: fabric,
		ep:     ep,
		reg:    reg,
		hub:    newStreamHub(),
		done:   make(chan struct{}),
	}
	obs = newGroupObservability(cfg.Observability)
	n.obs = obs
	obs.attachLinks(ep)

	deliver := func(ev Event) {
		d := Delivery{Node: n.id, Event: ev}
		n.hub.publish(d)
		if o.deliver != nil {
			o.deliver(d)
		}
	}
	// Detector verdicts maintain the node's own gossip target set:
	// confirmed members stop receiving fanout, members that prove alive
	// again are re-admitted.
	onMembership := func(peer gossip.NodeID, status gossip.MemberStatus) {
		switch status {
		case gossip.MemberConfirmed:
			reg.Remove(peer)
		case gossip.MemberAlive:
			reg.Add(peer)
		}
		if o.onMember != nil {
			o.onMember(n.id, peer, status)
		}
	}
	node, err := core.NewAdaptiveNode(core.NodeConfig{
		ID:            n.id,
		Gossip:        cfg.gossipParams(),
		Adaptive:      cfg.Adaptive,
		Core:          cfg.Adaptation,
		Recovery:      cfg.Recovery.params(),
		Failure:       cfg.Failure.params(),
		OnMembership:  onMembership,
		Peers:         reg,
		RNG:           rand.New(rand.NewPCG(uint64(seed), uint64(seed)^0xABCDEF)),
		Deliver:       deliver,
		Metrics:       obs.node,
		Tracer:        obs.tracer(),
		Links:         obs.peers,
		Health:        cfg.Observability.healthParams(),
		HealthAugment: healthAugment(ep, fabric),
		Start:         time.Now(),
	})
	if err != nil {
		return fail(err)
	}
	runner, err := runtime.NewRunner(runtime.Config{
		Node:      node,
		Transport: ep,
		Period:    cfg.Period,
		PhaseSeed: uint64(seed) + 7,
		Metrics:   obs.runner,
	})
	if err != nil {
		return fail(err)
	}
	n.runner = runner
	if err := obs.bindServer(cfg.Observability.DebugAddr,
		func() Stats { return n.Stats() }, n.ClusterHealth); err != nil {
		return fail(err)
	}
	return n, nil
}

// ID returns the node's name.
func (n *Node) ID() NodeID { return n.id }

// Addr returns the node's bound wire address (useful with ":0" binds),
// or "" when the transport has no address to report.
func (n *Node) Addr() string {
	if a, ok := n.ep.(udpAddrer); ok {
		return a.Addr().String()
	}
	return ""
}

// AddPeer registers a member discovered after startup: its address is
// registered with the transport's address book and the member joins
// the gossip target set. On transports without an address book
// (PeerRegistrar) — such as the memory fabric, which routes by id —
// pass addr == ""; a non-empty address there is an error, and an
// invalid address on a book-keeping transport fails rather than
// leaving a member unreachable.
func (n *Node) AddPeer(id, addr string) error {
	registrar, ok := n.fabric.(PeerRegistrar)
	switch {
	case ok:
		if err := registrar.Register(NodeID(id), addr); err != nil {
			return err
		}
	case addr != "":
		return fmt.Errorf("adaptivegossip: transport has no address book to register %q with", addr)
	}
	n.reg.Add(NodeID(id))
	return nil
}

// RemovePeer drops a member from the gossip target set.
func (n *Node) RemovePeer(id string) {
	n.reg.Remove(NodeID(id))
}

// Members returns the node's current gossip target set (itself
// included). With Config.Failure.Enabled, confirmed-crashed members
// disappear from this list and rejoining members return to it.
func (n *Node) Members() []NodeID {
	return n.reg.IDs()
}

// Start begins gossiping. Cancelling ctx closes the node; a node that
// has been closed cannot be restarted. Idempotent while open — every
// context passed to Start is watched, so cancelling any of them closes
// the node. A transient endpoint failure may be retried.
func (n *Node) Start(ctx context.Context) error {
	if ctx == nil {
		return fmt.Errorf("adaptivegossip: nil context")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return fmt.Errorf("adaptivegossip: node closed")
	}
	if n.started {
		watchContext(ctx, n.done, n.Close)
		return nil
	}
	if s, ok := n.ep.(starter); ok && !n.epStarted {
		if err := s.Start(); err != nil {
			return err
		}
	}
	n.epStarted = true
	n.runner.Start()
	n.started = true
	watchContext(ctx, n.done, n.Close)
	return nil
}

// Close halts gossip, closes the transport and ends every Events
// stream. Idempotent; later calls return nil.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()
	close(n.done)
	n.runner.Stop()
	err := n.ep.Close()
	if ferr := n.fabric.Close(); err == nil {
		err = ferr
	}
	n.hub.close()
	n.obs.close()
	return err
}

// Events returns a stream of this node's deliveries. From
// subscription onward the stream sees every delivery the WithDeliver
// callback sees; it is closed when ctx is cancelled or the node is
// closed. A subscriber that falls more than DefaultEventStreamBuffer
// behind loses deliveries (counted in Stats.StreamDropped).
func (n *Node) Events(ctx context.Context) <-chan Delivery {
	return n.hub.subscribe(ctx)
}

// Publish broadcasts payload, reporting whether it was admitted by the
// node's rate allowance.
func (n *Node) Publish(payload []byte) bool {
	return n.runner.Publish(payload)
}

// SetBufferCapacity resizes the local events buffer at runtime.
func (n *Node) SetBufferCapacity(capacity int) error {
	return n.runner.SetBufferCapacity(capacity)
}

// Snapshot captures the node's protocol state.
func (n *Node) Snapshot() NodeSnapshot {
	return n.runner.Snapshot()
}

// Stats returns the unified counter snapshot (Nodes == 1).
func (n *Node) Stats() Stats {
	var st Stats
	st.add(n.runner.Snapshot())
	st.StreamDropped = n.hub.droppedCount()
	st.addWire(n.fabric)
	st.addPeers(n.obs.peers)
	return st
}

// ClusterHealth returns the node's converged view of the cluster's
// gossip-disseminated health digests, sorted by member id — the node's
// own entry plus one per member it has heard a digest about. Empty
// unless Config.Observability.HealthDigests is set.
func (n *Node) ClusterHealth() []MemberHealth {
	return memberHealthView(n.runner.ClusterHealth())
}

// DebugAddr returns the bound address of the debug HTTP listener, or
// "" when Config.Observability.DebugAddr was empty. Useful with ":0"
// binds.
func (n *Node) DebugAddr() string { return n.obs.debugAddr() }

// watchContext closes the group when ctx is cancelled, releasing the
// watcher when the group closes first.
func watchContext(ctx context.Context, done <-chan struct{}, closeFn func() error) {
	stop := ctx.Done()
	if stop == nil {
		return
	}
	go func() {
		select {
		case <-stop:
			closeFn()
		case <-done:
		}
	}()
}

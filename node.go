package adaptivegossip

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"adaptivegossip/internal/core"
	"adaptivegossip/internal/gossip"
	"adaptivegossip/internal/membership"
	"adaptivegossip/internal/runtime"
	"adaptivegossip/internal/transport"
)

// NodeOptions configures a network-facing broadcast node.
type NodeOptions struct {
	// ID is this node's name in the group. Required.
	ID string
	// Bind is the UDP listen address, e.g. "127.0.0.1:7946" or
	// "0.0.0.0:0". Required.
	Bind string
	// Peers maps known member names to their UDP addresses. Peers can
	// also be added later with AddPeer.
	Peers map[string]string
	// Config is the protocol configuration (DefaultConfig if zero).
	Config Config
	// Deliver receives each broadcast exactly once (optional).
	Deliver func(Event)
	// Seed fixes protocol randomness; 0 derives one from the ID.
	Seed int64
	// MaxDatagram overrides the UDP datagram split threshold.
	MaxDatagram int
	// SendLoss injects iid loss on outgoing datagrams (probability in
	// [0,1]) — for demos and tests on loopback, where the real network
	// never drops. See examples/udpcluster's -loss flag.
	SendLoss float64
	// OnMemberChange observes failure-detector transitions (requires
	// Config.FailureDetectionEnabled): suspect when probes go
	// unanswered, confirmed when a member is declared crashed (it is
	// evicted from this node's gossip targets automatically), alive
	// when a member refutes or rejoins (it is re-admitted). The
	// callback runs on the node's gossip goroutine and must be fast.
	OnMemberChange func(id NodeID, status MemberStatus)
}

// Node is a single broadcast group member bound to a UDP socket — the
// deployment shape of the paper's prototype (one process per
// workstation). Create with NewUDPNode, then Start; Stop tears the
// socket and the gossip loop down.
type Node struct {
	id     NodeID
	tr     *transport.UDPTransport
	reg    *membership.Registry
	runner *runtime.Runner

	mu      sync.Mutex
	started bool
	stopped bool
}

// NewUDPNode builds a node from opts.
func NewUDPNode(opts NodeOptions) (*Node, error) {
	if opts.ID == "" {
		return nil, fmt.Errorf("adaptivegossip: node id is required")
	}
	if opts.Bind == "" {
		return nil, fmt.Errorf("adaptivegossip: bind address is required")
	}
	cfg := opts.Config
	if cfg == (Config{}) {
		cfg = DefaultConfig()
	}
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	seed := opts.Seed
	if seed == 0 {
		for _, b := range []byte(opts.ID) {
			seed = seed*131 + int64(b)
		}
		seed++
	}

	udpOpts := []transport.UDPOption{}
	if opts.MaxDatagram > 0 {
		udpOpts = append(udpOpts, transport.WithMaxDatagram(opts.MaxDatagram))
	}
	if opts.SendLoss > 0 {
		udpOpts = append(udpOpts, transport.WithUDPSendLoss(opts.SendLoss, uint64(seed)+0x1055))
	}
	tr, err := transport.NewUDPTransport(NodeID(opts.ID), opts.Bind, udpOpts...)
	if err != nil {
		return nil, err
	}

	members := []NodeID{NodeID(opts.ID)}
	for peer, addr := range opts.Peers {
		if err := tr.Register(NodeID(peer), addr); err != nil {
			tr.Close()
			return nil, err
		}
		members = append(members, NodeID(peer))
	}
	reg := membership.NewRegistry(members...)

	var deliver gossip.DeliverFunc
	if opts.Deliver != nil {
		deliver = opts.Deliver
	}
	// Detector verdicts maintain the node's own gossip target set:
	// confirmed members stop receiving fanout, members that prove alive
	// again are re-admitted.
	onMembership := func(id gossip.NodeID, status gossip.MemberStatus) {
		switch status {
		case gossip.MemberConfirmed:
			reg.Remove(id)
		case gossip.MemberAlive:
			reg.Add(id)
		}
		if opts.OnMemberChange != nil {
			opts.OnMemberChange(id, status)
		}
	}
	node, err := core.NewAdaptiveNode(core.NodeConfig{
		ID:           NodeID(opts.ID),
		Gossip:       cfg.gossipParams(),
		Adaptive:     cfg.Adaptive,
		Core:         cfg.Adaptation,
		Recovery:     cfg.recoveryParams(),
		Failure:      cfg.failureParams(),
		OnMembership: onMembership,
		Peers:        reg,
		RNG:          rand.New(rand.NewPCG(uint64(seed), uint64(seed)^0xABCDEF)),
		Deliver:      deliver,
		Start:        time.Now(),
	})
	if err != nil {
		tr.Close()
		return nil, err
	}
	runner, err := runtime.NewRunner(runtime.Config{
		Node:      node,
		Transport: tr,
		Period:    cfg.Period,
		PhaseSeed: uint64(seed) + 7,
	})
	if err != nil {
		tr.Close()
		return nil, err
	}
	return &Node{id: NodeID(opts.ID), tr: tr, reg: reg, runner: runner}, nil
}

// ID returns the node's name.
func (n *Node) ID() NodeID { return n.id }

// Addr returns the bound UDP address (useful with ":0" binds).
func (n *Node) Addr() string { return n.tr.Addr().String() }

// AddPeer registers a member discovered after startup.
func (n *Node) AddPeer(id, addr string) error {
	if err := n.tr.Register(NodeID(id), addr); err != nil {
		return err
	}
	n.reg.Add(NodeID(id))
	return nil
}

// RemovePeer drops a member from the gossip target set.
func (n *Node) RemovePeer(id string) {
	n.reg.Remove(NodeID(id))
}

// Members returns the node's current gossip target set (itself
// included). With failure detection enabled, confirmed-crashed members
// disappear from this list and rejoining members return to it.
func (n *Node) Members() []NodeID {
	return n.reg.IDs()
}

// Start begins gossiping. Idempotent.
func (n *Node) Start() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.started {
		return nil
	}
	if err := n.tr.Start(); err != nil {
		return err
	}
	n.runner.Start()
	n.started = true
	return nil
}

// Stop halts gossip and closes the socket. Idempotent.
func (n *Node) Stop() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	n.mu.Unlock()
	n.runner.Stop()
	n.tr.Close()
}

// Publish broadcasts payload, reporting whether it was admitted by the
// node's rate allowance.
func (n *Node) Publish(payload []byte) bool {
	return n.runner.Publish(payload)
}

// SetBufferCapacity resizes the local events buffer at runtime.
func (n *Node) SetBufferCapacity(capacity int) error {
	return n.runner.SetBufferCapacity(capacity)
}

// Snapshot captures the node's protocol state.
func (n *Node) Snapshot() NodeSnapshot {
	return n.runner.Snapshot()
}

// TransportStats returns UDP-level counters.
func (n *Node) TransportStats() transport.UDPStats {
	return n.tr.Stats()
}

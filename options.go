package adaptivegossip

import "fmt"

// Delivery is one delivered broadcast, as observed by both the
// WithDeliver callback and the Events stream. Topic is empty outside
// the pub/sub facade.
type Delivery struct {
	// Node is the group member that delivered the event.
	Node NodeID
	// Topic is the pub/sub topic the event was published on (empty for
	// single-group nodes and clusters).
	Topic Topic
	// Event is the delivered broadcast.
	Event Event
}

// DeliverFunc observes deliveries. It is invoked on the delivering
// member's gossip goroutine: calls for one member are serialized with
// that member's protocol processing (never concurrent with each other),
// while different members' callbacks may run concurrently. Callbacks
// must be fast and must not block — for a pull-based consumer use the
// Events stream instead.
type DeliverFunc func(d Delivery)

// MemberChangeFunc observes failure-detector transitions (requires
// Config.Failure.Enabled): suspect when probes go unanswered, confirmed
// when a member is declared crashed (it is evicted from the observer's
// gossip targets automatically), alive when a member refutes or rejoins
// (it is re-admitted). Like DeliverFunc it runs on the observing
// member's gossip goroutine and must be fast.
type MemberChangeFunc func(node, peer NodeID, status MemberStatus)

// facadeKind names the constructor applying an option, so options can
// reject facades they do not apply to instead of being silently
// ignored.
type facadeKind int

const (
	facadeNode facadeKind = iota
	facadeCluster
	facadePubSub
)

func (k facadeKind) String() string {
	switch k {
	case facadeNode:
		return "NewNode"
	case facadeCluster:
		return "NewCluster"
	default:
		return "NewPubSub"
	}
}

// groupOptions is the option state shared by all three facades.
type groupOptions struct {
	kind     facadeKind
	seed     int64
	deliver  DeliverFunc
	onMember MemberChangeFunc
	fabric   Transport
	prefix   string
	peers    map[string]string
}

// Option configures a group constructor. The same option set serves
// NewNode, NewCluster and NewPubSub; options that make no sense for a
// facade (WithPeers outside NewNode, WithNamePrefix on NewNode, ...)
// return a construction error.
type Option func(*groupOptions) error

// WithSeed fixes the group's protocol randomness (gossip target
// selection, adaptation jitter, tick phases) for reproducible runs.
// Zero — and, for NewNode, an omitted option — derives a seed from the
// member name.
func WithSeed(seed int64) Option {
	return func(o *groupOptions) error {
		o.seed = seed
		return nil
	}
}

// WithDeliver observes every delivery in the group through fn. See
// DeliverFunc for the threading contract. An Events stream observes
// the same delivery feed from the moment it subscribes.
func WithDeliver(fn DeliverFunc) Option {
	return func(o *groupOptions) error {
		o.deliver = fn
		return nil
	}
}

// WithTransport plugs a message fabric into the group: one of the
// built-ins (NewMemTransport, NewUDPTransport) or any custom Transport.
// The group takes ownership immediately: the fabric is closed on Close
// and also when the constructor fails. Default: a UDP fabric for
// NewNode, a memory fabric for NewCluster and NewPubSub.
func WithTransport(tr Transport) Option {
	return func(o *groupOptions) error {
		if tr == nil {
			return fmt.Errorf("adaptivegossip: transport must not be nil")
		}
		o.fabric = tr
		return nil
	}
}

// WithOnMemberChange observes failure-detector transitions. Requires
// Config.Failure.Enabled; not available on NewPubSub (the pub/sub layer
// has no detector).
func WithOnMemberChange(fn MemberChangeFunc) Option {
	return func(o *groupOptions) error {
		if o.kind == facadePubSub {
			return fmt.Errorf("adaptivegossip: WithOnMemberChange does not apply to %s", o.kind)
		}
		o.onMember = fn
		return nil
	}
}

// WithNamePrefix sets the generated member-name prefix ("node-" for
// clusters, "peer-" for pub/sub). Not available on NewNode, whose name
// is explicit.
func WithNamePrefix(prefix string) Option {
	return func(o *groupOptions) error {
		if o.kind == facadeNode {
			return fmt.Errorf("adaptivegossip: WithNamePrefix does not apply to %s", o.kind)
		}
		if prefix == "" {
			return fmt.Errorf("adaptivegossip: name prefix must not be empty")
		}
		o.prefix = prefix
		return nil
	}
}

// WithPeers seeds a NewNode's address book with known members
// (name → wire address). Requires a transport with an address book
// (PeerRegistrar — the UDP fabric). Peers can also be added later with
// Node.AddPeer.
func WithPeers(peers map[string]string) Option {
	return func(o *groupOptions) error {
		if o.kind != facadeNode {
			return fmt.Errorf("adaptivegossip: WithPeers does not apply to %s", o.kind)
		}
		o.peers = peers
		return nil
	}
}

// applyOptions folds opts over the facade's defaults. Every option is
// applied even after an error, so a transport handed over via
// WithTransport is always recorded in the result — constructors close
// it on any failure path, keeping ownership unambiguous.
func applyOptions(kind facadeKind, defaults groupOptions, opts []Option) (groupOptions, error) {
	o := defaults
	o.kind = kind
	var first error
	for _, opt := range opts {
		if err := opt(&o); err != nil && first == nil {
			first = err
		}
	}
	return o, first
}

package adaptivegossip

import (
	"fmt"
	"net"
	"sync"
	"time"

	"adaptivegossip/internal/gossip"
	"adaptivegossip/internal/transport"
)

// Wire-level re-exports. Message and MessageHandler make the Endpoint
// contract nameable by custom transport implementations (TCP, QUIC,
// mock fabrics) without reaching into internal packages.
type (
	// Message is one gossip datagram: events, adaptation headers and
	// the piggybacked recovery/failure-detection payloads.
	Message = gossip.Message
	// MessageHandler consumes an incoming gossip message. Transports
	// call it from their delivery goroutines; it must be fast or hand
	// off.
	MessageHandler = transport.Handler
	// Endpoint moves gossip messages for one group member. It is the
	// per-node half of a Transport; the built-in implementations are
	// the in-memory fabric endpoint and the UDP socket transport.
	Endpoint = transport.Transport
	// ManySender is the optional fanout fast path of an Endpoint: one
	// read-only message addressed to many peers in a single call, so
	// the implementation can pay the encode cost once per round instead
	// of once per target. Both built-in fabrics implement it; custom
	// Endpoints that do not are driven through a per-peer Send fallback
	// and keep working unchanged. See SendMany.
	ManySender = transport.ManySender
	// Compressor is the payload-compression seam of the wire codec
	// (wire v5): it compresses and decompresses the event section of
	// encoded messages. Compress appends the compressed form of src to
	// dst; Decompress appends exactly rawLen decompressed bytes,
	// erroring on any mismatch. Implementations must be safe for
	// concurrent use. Select the built-in implementations by name
	// through Config.Transport.Compression or WithCompression ("none",
	// "flate").
	Compressor = transport.Compressor
)

// SendMany transmits msg to every target through ep, using the
// ManySender fast path when ep implements it and falling back to one
// Send per target otherwise. Delivery is best effort per target: every
// target is attempted, and SendMany returns how many were sent plus the
// first error encountered.
func SendMany(ep Endpoint, targets []NodeID, msg *Message) (int, error) {
	return transport.SendMany(ep, targets, msg)
}

// Transport is the pluggable message fabric behind every group facade:
// NewNode, NewCluster and NewPubSub ask it for one Endpoint per local
// member. Bring any fabric — TCP, QUIC, a test mock — by implementing
// this interface and passing it via WithTransport.
//
// A Transport belongs to exactly one group. The group takes ownership
// at construction and closes the fabric when the group is closed.
type Transport interface {
	// Endpoint attaches a member to the fabric. Each id may be
	// attached at most once.
	Endpoint(id NodeID) (Endpoint, error)
	// Close releases fabric-wide resources and any endpoints still
	// open.
	Close() error
}

// PeerRegistrar is implemented by transports that route by explicit
// address books (the built-in UDP fabric). Node.AddPeer forwards
// registrations to it when present.
type PeerRegistrar interface {
	// Register maps a member id to its wire address for every local
	// endpoint, current and future.
	Register(id NodeID, addr string) error
}

// Stats aliases for the built-in transports.
type (
	// MemTransportStats counts in-memory fabric traffic.
	MemTransportStats = transport.MemStats
	// UDPTransportStats counts UDP wire activity, summed across the
	// fabric's endpoints.
	UDPTransportStats = transport.UDPStats
)

// WireStats is the transport-independent wire counter set surfaced in
// the unified Stats snapshot: how much the fabric moved and what it
// had to discard. Both built-in fabrics report it (the memory fabric
// has no wire, so its byte and error counters stay zero); custom
// transports opt in by implementing WireStatser.
type WireStats struct {
	// Sent counts outgoing messages handed to the wire.
	Sent uint64
	// SentBytes counts outgoing payload bytes (0 for fabrics that do
	// not serialize).
	SentBytes uint64
	// Received counts messages delivered up from the wire.
	Received uint64
	// RecvBytes counts inbound payload bytes (0 for fabrics that do
	// not serialize).
	RecvBytes uint64
	// ReadErrors counts failed socket reads.
	ReadErrors uint64
	// SplitChunks counts datagram-size splits of oversized messages.
	SplitChunks uint64
	// RecvQueueDrops counts inbound messages discarded because the
	// receive dispatch queue was full.
	RecvQueueDrops uint64
	// PreCompressionBytes and PostCompressionBytes measure the event
	// sections of encoded messages before and after payload compression
	// (wire v5). Equal counters mean compression is off or never paid
	// for itself; their ratio is the achieved compression factor.
	PreCompressionBytes  uint64
	PostCompressionBytes uint64
}

// WireStatser is implemented by transports that can report wire-level
// counters. The facades fold the result into Stats; fabrics without it
// simply leave the wire counters zero.
type WireStatser interface {
	WireStats() WireStats
}

// transportConfig collects the option set shared by the built-in
// transports. Options that do not apply to a given fabric are rejected
// by its constructor, not silently ignored.
type transportConfig struct {
	seed           int64
	seedSet        bool
	latencyMin     time.Duration
	latencyMax     time.Duration
	latencySet     bool
	loss           float64
	lossSet        bool
	bind           string
	maxDatagram    int
	recvQueue      int
	compression    string
	compressor     transport.Compressor
	compressionSet bool
}

// TransportOption configures a built-in transport fabric
// (NewMemTransport, NewUDPTransport).
type TransportOption func(*transportConfig) error

// WithTransportSeed fixes the fabric's randomness (loss and latency
// draws) for reproducible runs.
func WithTransportSeed(seed int64) TransportOption {
	return func(c *transportConfig) error {
		c.seed = seed
		c.seedSet = true
		return nil
	}
}

// WithLatency injects uniform per-message delivery latency in
// [min, max]. Memory fabric only.
func WithLatency(min, max time.Duration) TransportOption {
	return func(c *transportConfig) error {
		if min < 0 || max < min {
			return fmt.Errorf("adaptivegossip: invalid latency bounds [%v, %v]", min, max)
		}
		c.latencyMin, c.latencyMax = min, max
		c.latencySet = true
		return nil
	}
}

// WithLoss injects iid message loss with probability p in [0, 1]: the
// memory fabric drops in flight, the UDP fabric drops outgoing
// datagrams (for demos and tests on loopback, where the real network
// never drops).
func WithLoss(p float64) TransportOption {
	return func(c *transportConfig) error {
		if p < 0 || p > 1 {
			return fmt.Errorf("adaptivegossip: loss probability %v out of [0,1]", p)
		}
		c.loss = p
		c.lossSet = true
		return nil
	}
}

// WithBind sets an explicit listen address (e.g. "0.0.0.0:7946") for a
// single-endpoint UDP fabric. Without it every endpoint auto-binds a
// loopback port. UDP fabric only.
func WithBind(addr string) TransportOption {
	return func(c *transportConfig) error {
		if addr == "" {
			return fmt.Errorf("adaptivegossip: bind address must not be empty")
		}
		c.bind = addr
		return nil
	}
}

// WithMaxDatagram overrides the UDP datagram split threshold. UDP
// fabric only.
func WithMaxDatagram(n int) TransportOption {
	return func(c *transportConfig) error {
		if n < 512 {
			return fmt.Errorf("adaptivegossip: max datagram %d too small", n)
		}
		c.maxDatagram = n
		return nil
	}
}

// WithRecvQueue sets the per-endpoint receive dispatch queue depth (the
// bound on datagrams buffered between the socket read loop and the
// consumer; overflow is dropped and counted in
// UDPTransportStats.RecvQueueDrops). Deeper queues absorb longer
// consumer stalls at the price of memory. UDP fabric only.
func WithRecvQueue(depth int) TransportOption {
	return func(c *transportConfig) error {
		if depth < 1 {
			return fmt.Errorf("adaptivegossip: recv queue depth %d must be at least 1", depth)
		}
		c.recvQueue = depth
		return nil
	}
}

// WithCompression selects the payload compression applied to the event
// section of every encoded message (wire v5): "none" (or "") leaves
// frames uncompressed, "flate" runs them through DEFLATE, stored
// uncompressed whenever compression would not shrink the section.
// Decoding is unaffected — compressed frames from peers are always
// accepted. Serializing fabrics only (the built-in UDP transport).
func WithCompression(name string) TransportOption {
	return func(c *transportConfig) error {
		comp, err := transport.CompressorByName(name)
		if err != nil {
			return fmt.Errorf("adaptivegossip: %w", err)
		}
		c.compression = name
		c.compressor = comp
		c.compressionSet = true
		return nil
	}
}

// compressionSetter is the internal seam through which the facades push
// Config.Transport.Compression into a fabric after construction. Both
// built-in transports implement it; custom fabrics that cannot accept
// the knob surface a configuration error instead of silently sending
// uncompressed.
type compressionSetter interface {
	setCompression(name string) error
}

// applyTransportConfig pushes the Config.Transport knobs into a fabric
// (built-in or user-provided) before its endpoints are created. Asking
// for real compression on a fabric without the seam is a configuration
// error, never a silent no-op.
func applyTransportConfig(fabric Transport, tc TransportConfig) error {
	comp, err := transport.CompressorByName(tc.Compression)
	if err != nil {
		return fmt.Errorf("adaptivegossip: Config.Transport: %w", err)
	}
	if comp == nil {
		return nil
	}
	cs, ok := fabric.(compressionSetter)
	if !ok {
		return fmt.Errorf("adaptivegossip: Config.Transport.Compression %q needs a transport with a compression seam (the built-in UDP fabric); %T has none", tc.Compression, fabric)
	}
	return cs.setCompression(tc.Compression)
}

func buildTransportConfig(opts []TransportOption) (transportConfig, error) {
	var c transportConfig
	for _, opt := range opts {
		if err := opt(&c); err != nil {
			return transportConfig{}, err
		}
	}
	return c, nil
}

// MemTransport is the in-process message fabric: goroutine delivery
// with optional latency and loss injection, replacing the paper's
// Ethernet LAN for in-process groups. It is the default transport of
// NewCluster and NewPubSub.
type MemTransport struct {
	net *transport.MemNetwork
}

// NewMemTransport creates an in-memory fabric. Applicable options:
// WithTransportSeed, WithLatency, WithLoss.
func NewMemTransport(opts ...TransportOption) (*MemTransport, error) {
	c, err := buildTransportConfig(opts)
	if err != nil {
		return nil, err
	}
	if c.bind != "" {
		return nil, fmt.Errorf("adaptivegossip: WithBind does not apply to the memory transport")
	}
	if c.maxDatagram != 0 {
		return nil, fmt.Errorf("adaptivegossip: WithMaxDatagram does not apply to the memory transport")
	}
	if c.recvQueue != 0 {
		return nil, fmt.Errorf("adaptivegossip: WithRecvQueue does not apply to the memory transport")
	}
	if c.compressor != nil {
		return nil, fmt.Errorf("adaptivegossip: WithCompression(%q) does not apply to the memory transport (it never serializes)", c.compression)
	}
	memOpts := []transport.MemOption{}
	if c.seedSet {
		memOpts = append(memOpts, transport.WithMemSeed(uint64(c.seed)+0x5EED))
	}
	if c.latencySet {
		memOpts = append(memOpts, transport.WithMemLatency(c.latencyMin, c.latencyMax))
	}
	if c.lossSet {
		memOpts = append(memOpts, transport.WithMemLoss(c.loss))
	}
	n, err := transport.NewMemNetwork(memOpts...)
	if err != nil {
		return nil, err
	}
	return &MemTransport{net: n}, nil
}

// Endpoint attaches a member to the fabric.
func (t *MemTransport) Endpoint(id NodeID) (Endpoint, error) {
	return t.net.Endpoint(id)
}

// Stats returns the fabric's traffic counters.
func (t *MemTransport) Stats() MemTransportStats {
	return t.net.Stats()
}

// WireStats maps the fabric counters onto the transport-independent
// wire counter set. The memory fabric never serializes and cannot fail
// a read, so bytes, errors and splits stay zero.
func (t *MemTransport) WireStats() WireStats {
	st := t.net.Stats()
	return WireStats{
		Sent:     st.Sent,
		Received: st.Delivered,
	}
}

// Close shuts the fabric down and waits for in-flight deliveries.
func (t *MemTransport) Close() error {
	t.net.Close()
	return nil
}

// setCompression validates the Config.Transport.Compression knob: the
// memory fabric never serializes, so only "none" is accepted.
func (t *MemTransport) setCompression(name string) error {
	comp, err := transport.CompressorByName(name)
	if err != nil {
		return fmt.Errorf("adaptivegossip: %w", err)
	}
	if comp != nil {
		return fmt.Errorf("adaptivegossip: Config.Transport.Compression %q does not apply to the memory transport (it never serializes)", name)
	}
	return nil
}

var (
	_ Transport         = (*MemTransport)(nil)
	_ WireStatser       = (*MemTransport)(nil)
	_ compressionSetter = (*MemTransport)(nil)
)

// UDPTransport is the real-wire fabric: one UDP socket per endpoint,
// routed by an explicit address book — the deployment shape of the
// paper's prototype. It is the default transport of NewNode.
//
// Endpoints created on the same fabric are meshed automatically (each
// learns every other's bound address), so an in-process cluster can run
// over real loopback datagrams; remote peers are added with Register
// or Node.AddPeer.
type UDPTransport struct {
	cfg transportConfig

	mu       sync.Mutex
	eps      map[NodeID]*transport.UDPTransport
	order    []NodeID
	book     map[NodeID]string
	bindUsed bool
	closed   bool
}

// NewUDPTransport creates a UDP fabric. Applicable options: WithBind
// (single endpoint only), WithLoss, WithMaxDatagram, WithRecvQueue,
// WithTransportSeed.
func NewUDPTransport(opts ...TransportOption) (*UDPTransport, error) {
	c, err := buildTransportConfig(opts)
	if err != nil {
		return nil, err
	}
	if c.latencySet {
		return nil, fmt.Errorf("adaptivegossip: WithLatency does not apply to the UDP transport")
	}
	return &UDPTransport{
		cfg:  c,
		eps:  make(map[NodeID]*transport.UDPTransport),
		book: make(map[NodeID]string),
	}, nil
}

// Endpoint binds a UDP socket for a member and meshes it with every
// endpoint already on the fabric and every Register-ed peer.
func (t *UDPTransport) Endpoint(id NodeID) (Endpoint, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, fmt.Errorf("adaptivegossip: transport closed")
	}
	if _, dup := t.eps[id]; dup {
		return nil, fmt.Errorf("adaptivegossip: duplicate endpoint %s", id)
	}
	bind := "127.0.0.1:0"
	if t.cfg.bind != "" {
		if t.bindUsed {
			return nil, fmt.Errorf("adaptivegossip: WithBind fixes a single listen address; endpoint %s needs an auto-bound fabric", id)
		}
		bind = t.cfg.bind
	}
	var udpOpts []transport.UDPOption
	if t.cfg.maxDatagram > 0 {
		udpOpts = append(udpOpts, transport.WithMaxDatagram(t.cfg.maxDatagram))
	}
	if t.cfg.recvQueue > 0 {
		udpOpts = append(udpOpts, transport.WithUDPRecvQueue(t.cfg.recvQueue))
	}
	if t.cfg.loss > 0 {
		seed := uint64(t.cfg.seed) + 0x1055
		for _, b := range []byte(id) {
			seed = seed*131 + uint64(b)
		}
		udpOpts = append(udpOpts, transport.WithUDPSendLoss(t.cfg.loss, seed))
	}
	if t.cfg.compressor != nil {
		udpOpts = append(udpOpts, transport.WithUDPCompression(t.cfg.compressor))
	}
	ep, err := transport.NewUDPTransport(id, bind, udpOpts...)
	if err != nil {
		return nil, err
	}
	// Mesh with the fabric's other endpoints, both directions.
	for _, otherID := range t.order {
		other := t.eps[otherID]
		if err := other.Register(id, ep.Addr().String()); err != nil {
			ep.Close()
			return nil, err
		}
		if err := ep.Register(otherID, other.Addr().String()); err != nil {
			ep.Close()
			return nil, err
		}
	}
	// Apply the fabric-wide address book (remote peers).
	for peer, addr := range t.book {
		if peer == id {
			continue
		}
		if err := ep.Register(peer, addr); err != nil {
			ep.Close()
			return nil, err
		}
	}
	t.eps[id] = ep
	t.order = append(t.order, id)
	t.bindUsed = true
	return ep, nil
}

// Register maps a peer id to its UDP address on every local endpoint,
// current and future.
func (t *UDPTransport) Register(id NodeID, addr string) error {
	if addr == "" {
		return fmt.Errorf("adaptivegossip: peer %s needs a non-empty address", id)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return fmt.Errorf("adaptivegossip: transport closed")
	}
	t.book[id] = addr
	for _, epID := range t.order {
		if epID == id {
			continue
		}
		if err := t.eps[epID].Register(id, addr); err != nil {
			return err
		}
	}
	return nil
}

// Addr returns the bound address of a local endpoint ("" when id has no
// endpoint on this fabric) — useful with ":0" binds.
func (t *UDPTransport) Addr(id NodeID) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	ep, ok := t.eps[id]
	if !ok {
		return ""
	}
	return ep.Addr().String()
}

// Stats sums the wire counters across the fabric's endpoints.
func (t *UDPTransport) Stats() UDPTransportStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	var sum UDPTransportStats
	for _, ep := range t.eps {
		st := ep.Stats()
		sum.Sent += st.Sent
		sum.SentBytes += st.SentBytes
		sum.SplitChunks += st.SplitChunks
		sum.Received += st.Received
		sum.RecvBytes += st.RecvBytes
		sum.DecodeErrors += st.DecodeErrors
		sum.NoHandler += st.NoHandler
		sum.SendErrors += st.SendErrors
		sum.LossDropped += st.LossDropped
		sum.ReadErrors += st.ReadErrors
		sum.RecvQueueDrops += st.RecvQueueDrops
		sum.PreCompressionBytes += st.PreCompressionBytes
		sum.PostCompressionBytes += st.PostCompressionBytes
	}
	return sum
}

// WireStats maps the summed endpoint counters onto the
// transport-independent wire counter set.
func (t *UDPTransport) WireStats() WireStats {
	st := t.Stats()
	return WireStats{
		Sent:                 st.Sent,
		SentBytes:            st.SentBytes,
		Received:             st.Received,
		RecvBytes:            st.RecvBytes,
		ReadErrors:           st.ReadErrors,
		SplitChunks:          st.SplitChunks,
		RecvQueueDrops:       st.RecvQueueDrops,
		PreCompressionBytes:  st.PreCompressionBytes,
		PostCompressionBytes: st.PostCompressionBytes,
	}
}

// Close closes every endpoint socket still open.
func (t *UDPTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closed = true
	var first error
	for _, ep := range t.eps {
		if err := ep.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// setCompression applies the Config.Transport.Compression knob to every
// endpoint created after the call (the facades apply it before any
// endpoints exist).
func (t *UDPTransport) setCompression(name string) error {
	comp, err := transport.CompressorByName(name)
	if err != nil {
		return fmt.Errorf("adaptivegossip: %w", err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cfg.compression = name
	t.cfg.compressor = comp
	return nil
}

var (
	_ Transport         = (*UDPTransport)(nil)
	_ PeerRegistrar     = (*UDPTransport)(nil)
	_ WireStatser       = (*UDPTransport)(nil)
	_ compressionSetter = (*UDPTransport)(nil)
)

// udpAddrer lets the Node facade report a bound address without
// depending on the concrete transport type.
type udpAddrer interface{ Addr() *net.UDPAddr }

// starter is the optional start hook of endpoints that own a receive
// loop (the UDP socket transport). Facades call it on Start.
type starter interface{ Start() error }

package adaptivegossip

import (
	"bytes"
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestTransportConfigValidate(t *testing.T) {
	for _, name := range []string{"", "none", "flate"} {
		if err := (TransportConfig{Compression: name}).Validate(); err != nil {
			t.Fatalf("compression %q rejected: %v", name, err)
		}
	}
	if err := (TransportConfig{Compression: "zstd"}).Validate(); err == nil {
		t.Fatal("unknown compressor name accepted")
	}
	bad := DefaultConfig()
	bad.Transport.Compression = "zstd"
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "Config.Transport") {
		t.Fatalf("Config.Validate did not surface the transport sub-config: %v", err)
	}
}

func TestWithCompressionOption(t *testing.T) {
	if _, err := NewUDPTransport(WithCompression("bogus")); err == nil {
		t.Fatal("unknown compressor name accepted by WithCompression")
	}
	tr, err := NewUDPTransport(WithCompression("flate"))
	if err != nil {
		t.Fatal(err)
	}
	tr.Close()
	// The memory fabric never serializes: real compression is a
	// configuration error, the explicit "none" is fine.
	if _, err := NewMemTransport(WithCompression("flate")); err == nil {
		t.Fatal("memory transport accepted flate compression")
	}
	mem, err := NewMemTransport(WithCompression("none"))
	if err != nil {
		t.Fatalf("memory transport rejected compression %q: %v", "none", err)
	}
	mem.Close()
}

// TestConfigCompressionNeedsSeam: asking for compression on a fabric
// that cannot serialize (memory) or that has no seam (custom) must fail
// construction, never silently send uncompressed.
func TestConfigCompressionNeedsSeam(t *testing.T) {
	cfg := fastConfig()
	cfg.Transport.Compression = "flate"
	if _, err := NewCluster(3, cfg); err == nil ||
		!strings.Contains(err.Error(), "memory transport") {
		t.Fatalf("cluster over memory fabric accepted compression: %v", err)
	}
	mem, err := NewMemTransport()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewNode("x", cfg, WithTransport(mem)); err == nil ||
		!strings.Contains(err.Error(), "memory transport") {
		t.Fatalf("node over memory fabric accepted compression: %v", err)
	}
	custom := &fakeSeamlessTransport{}
	if _, err := NewCluster(3, cfg, WithTransport(custom)); err == nil ||
		!strings.Contains(err.Error(), "compression seam") {
		t.Fatalf("custom fabric without a seam accepted compression: %v", err)
	}
	if !custom.closed.Load() {
		t.Fatal("rejected custom fabric was not closed")
	}
}

// fakeSeamlessTransport is a minimal custom Transport with no
// compression seam.
type fakeSeamlessTransport struct{ closed atomic.Bool }

func (f *fakeSeamlessTransport) Endpoint(id NodeID) (Endpoint, error) {
	return nil, nil
}
func (f *fakeSeamlessTransport) Close() error {
	f.closed.Store(true)
	return nil
}

// TestClusterCompressionOverUDP runs a real cluster with
// Config.Transport.Compression="flate" over loopback UDP: gossip still
// disseminates, and the wire counters show the event sections shrinking
// (post-compression bytes strictly below pre-compression bytes).
func TestClusterCompressionOverUDP(t *testing.T) {
	fabric, err := NewUDPTransport(WithTransportSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig()
	cfg.Transport.Compression = "flate"
	var delivered atomic.Int64
	cluster, err := NewCluster(4, cfg,
		WithSeed(5),
		WithTransport(fabric),
		WithDeliver(func(d Delivery) { delivered.Add(1) }))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Highly compressible payload: the flate arm must pay off.
	payload := bytes.Repeat([]byte("adaptive gossip "), 40)
	if !cluster.Publish(0, payload) {
		t.Fatal("publish rejected")
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && delivered.Load() < 4 {
		time.Sleep(10 * time.Millisecond)
	}
	if delivered.Load() < 4 {
		t.Fatalf("only %d/4 nodes delivered over compressed UDP", delivered.Load())
	}
	st := cluster.Stats()
	if st.Wire.PreCompressionBytes == 0 {
		t.Fatal("pre-compression byte counter never moved")
	}
	if st.Wire.PostCompressionBytes >= st.Wire.PreCompressionBytes {
		t.Fatalf("compression never paid: pre=%d post=%d",
			st.Wire.PreCompressionBytes, st.Wire.PostCompressionBytes)
	}
}

GO ?= go

# The local entry point mirrors CI's static-analysis gate: formatting,
# the standard vet suite, and gossiplint (the project's own analyzers
# for the hot-path, scratch-lifetime, atomics and transport-copy
# contracts) in both standalone and go vet -vettool modes.
.PHONY: lint
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/gossiplint ./...
	$(GO) build -o $(CURDIR)/bin/gossiplint ./cmd/gossiplint
	$(GO) vet -vettool=$(CURDIR)/bin/gossiplint ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
		else echo "staticcheck not installed; CI runs it pinned"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
		else echo "govulncheck not installed; CI runs it pinned"; fi

.PHONY: build
build:
	$(GO) build ./...

.PHONY: test
test:
	$(GO) test ./...

.PHONY: race
race:
	$(GO) test -race ./...

.PHONY: bench
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

.PHONY: clean
clean:
	rm -rf bin
